// SwitchML-style reliability, extracted from the AGG workload (§VII) so
// any host program can reuse it against any transport.
//
// A RetransmitWindow delivers `chunks` numbered chunks through `window`
// slots: chunk c occupies slot c % stride, chunks c and c + stride share a
// slot with alternating versions (the alternating-bit rule — the version
// bit is (c / stride) & 1, available to the send callback via version()).
// Every send arms a one-shot retransmission timer on the transport's
// clock; an unacknowledged chunk is re-sent when it fires. Acknowledging a
// slot retires its chunk and immediately launches the next chunk chained
// on that slot.
//
// The window does not touch packets itself — the owner's SendFn builds and
// sends the actual message — so it works for AGG contributions today and
// any future windowed workload.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/transport.hpp"

namespace netcl::runtime {

class RetransmitWindow {
 public:
  struct Config {
    int chunks = 0;                   // total chunks to deliver
    int window = 1;                   // max outstanding slots
    double retransmit_ns = 200000.0;  // retransmission timeout
  };

  /// Called for every (re)transmission. `slot` is chunk % stride().
  using SendFn = std::function<void(int chunk, int slot, bool is_retransmission)>;

  /// The transport must outlive the window. Timers armed on the transport
  /// hold a weak liveness token, not a bare `this`: if the window is
  /// destroyed first, late firings become no-ops instead of dangling.
  RetransmitWindow(net::Transport& transport, const Config& config, SendFn send);

  /// Launches the initial window: one in-flight chunk per active slot.
  void start();

  /// Active slots: min(window, chunks).
  [[nodiscard]] int stride() const { return stride_; }
  /// Version bit of a chunk (the alternating-bit rule).
  [[nodiscard]] int version(int chunk) const { return (chunk / stride_) & 1; }
  /// The chunk currently in flight on `slot`; -1 when none (or the slot is
  /// out of range — slots often arrive off the wire, so this is guarded).
  [[nodiscard]] int chunk_for_slot(int slot) const;
  [[nodiscard]] bool is_done(int chunk) const;
  [[nodiscard]] bool complete() const { return completed_ == config_.chunks; }
  [[nodiscard]] int completed() const { return completed_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }

  /// Retires the chunk in flight on `slot` and launches the next chunk
  /// chained on the slot. No-op (returns false) when nothing is in flight
  /// there or it already completed — retransmitted responses arrive late.
  bool acknowledge_slot(int slot);

 private:
  void launch(int chunk, bool is_retransmission);

  net::Transport& transport_;
  Config config_;
  SendFn send_;
  /// Sentinel captured (weakly) by armed timers; expires with the window.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
  int stride_ = 1;
  std::vector<int> slot_chunk_;  // slot -> in-flight chunk (-1 none)
  std::vector<bool> done_;       // per chunk
  int completed_ = 0;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace netcl::runtime
