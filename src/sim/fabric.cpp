#include "sim/fabric.hpp"

#include <cassert>
#include <deque>

#include "obs/flightrec.hpp"
#include "obs/profiler.hpp"
#include "runtime/device_runtime.hpp"

namespace netcl::sim {

Fabric::Fabric(std::uint64_t seed) : rng_(seed) {}

void Fabric::add_host(std::uint16_t id) {
  adjacency_.try_emplace(host_ref(id));
  invalidate_routes();
}

SwitchDevice* Fabric::add_device(std::unique_ptr<SwitchDevice> device) {
  const std::uint16_t id = device->device_id();
  adjacency_.try_emplace(device_ref(id));
  auto [it, inserted] = devices_.insert_or_assign(id, std::move(device));
  invalidate_routes();
  return it->second.get();
}

SwitchDevice* Fabric::add_forwarding_device(std::uint16_t id) {
  return add_device(std::make_unique<SwitchDevice>(id));
}

void Fabric::connect(NodeRef a, NodeRef b, const LinkConfig& config) {
  adjacency_[a].push_back({b, config, 0.0});
  adjacency_[b].push_back({a, config, 0.0});
  invalidate_routes();
}

void Fabric::set_multicast_group(std::uint16_t device_id, std::uint16_t group,
                                 std::vector<NodeRef> members) {
  multicast_groups_[{device_id, group}] = std::move(members);
}

SwitchDevice* Fabric::device(std::uint16_t id) {
  const auto it = devices_.find(id);
  return it == devices_.end() ? nullptr : it->second.get();
}

void Fabric::restart_device(std::uint16_t id) {
  if (SwitchDevice* dev = device(id)) dev->restart();
  down_devices_.erase(id);
}

void Fabric::set_link_partitioned(NodeRef a, NodeRef b, bool partitioned) {
  for (Link& link : adjacency_[a]) {
    if (link.peer == b) link.partitioned = partitioned;
  }
  for (Link& link : adjacency_[b]) {
    if (link.peer == a) link.partitioned = partitioned;
  }
}

void Fabric::set_host_handler(std::uint16_t host, HostHandler handler) {
  host_handlers_[host] = std::move(handler);
}

void Fabric::send_from_host(std::uint16_t host, Packet packet) {
  forward(host_ref(host), std::move(packet), now_);
}

void Fabric::schedule(double delay_ns, std::function<void(Fabric&)> callback) {
  events_.push({now_ + delay_ns, sequence_++, {}, {}, std::move(callback)});
}

NodeRef Fabric::route_target(const Packet& packet) const {
  if (packet.has_netcl && packet.netcl.to != 0) return device_ref(packet.netcl.to);
  return host_ref(packet.netcl.dst);
}

NodeRef Fabric::next_hop(NodeRef node, NodeRef target) {
  if (node == target) return node;
  const auto key = std::make_pair(node, target);
  const auto cached = routes_.find(key);
  if (cached != routes_.end()) return cached->second;

  // BFS from `node`; record the first hop of the shortest path.
  std::map<NodeRef, NodeRef> first_hop;
  std::deque<NodeRef> frontier{node};
  std::map<NodeRef, bool> visited{{node, true}};
  while (!frontier.empty()) {
    const NodeRef current = frontier.front();
    frontier.pop_front();
    for (const Link& link : adjacency_[current]) {
      if (visited[link.peer]) continue;
      visited[link.peer] = true;
      first_hop[link.peer] = current == node ? link.peer : first_hop[current];
      if (link.peer == target) {
        routes_[key] = first_hop[link.peer];
        return first_hop[link.peer];
      }
      frontier.push_back(link.peer);
    }
  }
  return node;  // unreachable; caller drops
}

void Fabric::transmit(NodeRef from, NodeRef to, Packet&& packet, double start_time) {
  Link* link = nullptr;
  for (Link& candidate : adjacency_[from]) {
    if (candidate.peer == to) {
      link = &candidate;
      break;
    }
  }
  if (link == nullptr) return;  // no such link

  if (link->partitioned) {
    ++packets_dropped_partition;
    return;
  }
  if (link->config.loss_probability > 0.0 &&
      rng_.next_double() < link->config.loss_probability) {
    ++packets_dropped_loss;
    return;
  }
  const double serialization_ns =
      static_cast<double>(packet.wire_bytes()) * 8.0 / link->config.gbps;
  const double depart = std::max(start_time, link->next_free_ns);
  link->next_free_ns = depart + serialization_ns;
  double arrival = depart + serialization_ns + link->config.latency_ns;
  // Fault injection beyond Bernoulli loss (ISSUE 2): probabilities are
  // checked before drawing so configs without faults consume no randomness
  // (seeded runs stay reproducible across this change).
  if (link->config.reorder_probability > 0.0 &&
      rng_.next_double() < link->config.reorder_probability) {
    arrival += rng_.next_double() * link->config.reorder_jitter_ns;
    ++packets_reordered;
  }
  if (link->config.duplicate_probability > 0.0 &&
      rng_.next_double() < link->config.duplicate_probability) {
    events_.push({arrival + serialization_ns, sequence_++, to, packet, {}});
    ++packets_duplicated;
  }
  events_.push({arrival, sequence_++, to, std::move(packet), {}});
  ++packets_forwarded;
}

void Fabric::forward(NodeRef from, Packet&& packet, double depart_time) {
  const NodeRef target = route_target(packet);
  if (target == from) {
    // Already at the destination (e.g. reflect on the attached switch).
    if (from.kind == NodeRef::Kind::Device) {
      if (SwitchDevice* dev = device(from.id)) ++dev->stats.recirculations;
    }
    events_.push({depart_time, sequence_++, target, std::move(packet), {}});
    return;
  }
  const NodeRef hop = next_hop(from, target);
  if (hop == from) return;  // unreachable
  transmit(from, hop, std::move(packet), depart_time);
}

void Fabric::deliver(const Event& event) {
  if (event.callback != nullptr) {
    ++timer_events;
    event.callback(*this);
    return;
  }
  if (event.at.kind == NodeRef::Kind::Host) {
    ++packets_delivered;
    const auto it = host_handlers_.find(event.at.id);
    if (it != host_handlers_.end()) it->second(*this, event.at.id, event.packet);
    return;
  }

  // Device processing.
  SwitchDevice* dev = device(event.at.id);
  if (dev == nullptr) return;
  if (device_down(event.at.id)) {
    // A crashed device neither computes nor forwards; the packet dies here
    // exactly as it would at a powered-off switch.
    ++packets_dropped_device_down;
    return;
  }
  Packet packet = event.packet;
  double ready_time = now_;

  if (packet.has_netcl && packet.netcl.to == dev->device_id()) {
    ready_time += dev->pipeline_latency_ns();
    ComputeOutcome outcome;
    const KernelSpec* spec = dev->spec_for(packet.netcl.comp);
    ArgValues args;
    if (spec != nullptr) {
      args = decode_args(*spec, packet.payload);
      outcome = dev->execute(packet.netcl.comp, args, packet.netcl);
      packet.payload = encode_args(*spec, args);
    } else {
      // Addressed here, but no resident kernel serves this computation id —
      // misrouted (or not-yet-loaded) tenant traffic. The packet still
      // passes through (§IV), but count it and leave a flight-recorder
      // breadcrumb so operators can diagnose it (ISSUE 7).
      ++packets_unknown_computation;
      ++dev->stats.no_kernel;
      obs::flight(obs::FlightKind::kUnknownComputation,
                  static_cast<std::uint64_t>(packet.netcl.comp), dev->device_id());
    }
    const runtime::ForwardDecision decision = runtime::apply_action(
        packet.netcl, outcome.executed ? outcome.action : ActionKind::Pass, outcome.target,
        dev->device_id());
    if (decision.drop) {
      ++packets_dropped_action;
      ++dev->stats.drops_action;
      return;
    }
    // INT stamp (ISSUE 4): ingress on arrival, egress once the pipeline
    // latency is paid, queue depth = fabric events pending at delivery.
    // Stamped before the multicast fan-out so every copy carries the hop.
    if (packet.telemetry.requested) {
      stamp_hop(packet.telemetry,
                {dev->device_id(), dev->generation(), static_cast<std::uint64_t>(now_),
                 static_cast<std::uint64_t>(ready_time),
                 static_cast<std::uint32_t>(events_.size()), outcome.stage_ops});
    }
    if (decision.multicast) {
      ++packets_multicast;
      ++dev->stats.multicasts;
      const auto members =
          multicast_groups_.find({dev->device_id(), decision.multicast_group});
      if (members != multicast_groups_.end()) {
        for (const NodeRef member : members->second) {
          Packet copy = packet;
          if (member.kind == NodeRef::Kind::Host) {
            copy.netcl.dst = member.id;
            copy.netcl.to = 0;
          } else {
            copy.netcl.to = member.id;
          }
          forward(event.at, std::move(copy), ready_time);
        }
      }
      return;
    }
  } else if (packet.has_netcl) {
    // No-op transit through a device that was not asked to compute (§IV).
    ready_time += dev->pipeline_latency_ns() * 0.5;
    ++dev->stats.transits;
    if (packet.telemetry.requested) {
      stamp_hop(packet.telemetry,
                {dev->device_id(), dev->generation(), static_cast<std::uint64_t>(now_),
                 static_cast<std::uint64_t>(ready_time),
                 static_cast<std::uint32_t>(events_.size()), 0});
    }
  }
  forward(event.at, std::move(packet), ready_time);
}

double Fabric::run(double max_time_ns) {
  // Simulation runs are profiled like real event loops: register the
  // driving thread once so --profile covers sim-backed experiments too.
  obs::profile_register_thread();
  while (!events_.empty()) {
    const Event event = events_.top();
    if (event.time_ns > max_time_ns) break;
    events_.pop();
    now_ = event.time_ns;
    deliver(event);
  }
  return now_;
}

}  // namespace netcl::sim
