// Discrete-event network fabric: hosts, simulated switches, links with
// propagation latency / bandwidth / loss, shortest-path forwarding, and
// multicast groups.
//
// The fabric substitutes for the paper's 6-server + Tofino testbed: hosts
// run the NetCL host runtime, devices run compiled pipeline programs, and
// packets pay per-link serialization + propagation plus the device's
// modeled pipeline latency — the mechanisms Fig. 14's end-to-end results
// depend on.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/packet.hpp"
#include "sim/switch.hpp"

namespace netcl::sim {

/// Network node address: hosts and devices occupy separate id spaces.
struct NodeRef {
  enum class Kind : std::uint8_t { Host, Device } kind = Kind::Host;
  std::uint16_t id = 0;

  friend bool operator==(NodeRef, NodeRef) = default;
  friend auto operator<=>(NodeRef, NodeRef) = default;
};

[[nodiscard]] inline NodeRef host_ref(std::uint16_t id) { return {NodeRef::Kind::Host, id}; }
[[nodiscard]] inline NodeRef device_ref(std::uint16_t id) { return {NodeRef::Kind::Device, id}; }

struct LinkConfig {
  double latency_ns = 500.0;   // propagation
  double gbps = 100.0;         // serialization rate
  double loss_probability = 0.0;
  /// Per-packet probability of the link delivering a second copy (one
  /// serialization later, as a NIC/switch retry would).
  double duplicate_probability = 0.0;
  /// Per-packet probability of extra delivery delay (uniform in
  /// [0, reorder_jitter_ns]), so later sends can overtake the packet.
  double reorder_probability = 0.0;
  double reorder_jitter_ns = 2000.0;
};

class Fabric {
  // Declared before the public counter references below so it is
  // constructed first.
  obs::MetricsRegistry metrics_{"fabric"};

 public:
  explicit Fabric(std::uint64_t seed = 42);

  // --- topology -------------------------------------------------------------
  void add_host(std::uint16_t id);
  /// Registers a simulated switch; the fabric takes ownership.
  SwitchDevice* add_device(std::unique_ptr<SwitchDevice> device);
  /// A plain forwarding device with no NetCL program.
  SwitchDevice* add_forwarding_device(std::uint16_t id);
  void connect(NodeRef a, NodeRef b, const LinkConfig& config = {});
  void set_multicast_group(std::uint16_t device_id, std::uint16_t group,
                           std::vector<NodeRef> members);

  [[nodiscard]] SwitchDevice* device(std::uint16_t id);

  // --- fault injection (ISSUE 3) --------------------------------------------
  // All hooks default off and consume no randomness, so seeded runs without
  // faults stay byte-identical to pre-ISSUE-3 behavior.
  /// Marks a device crashed: packets addressed to or transiting it are
  /// dropped (counted in packets_dropped_device_down) until restart.
  void crash_device(std::uint16_t id) { down_devices_.insert(id); }
  /// Power-cycles a crashed device: registers zeroed, lookup entries
  /// re-seeded from declarations, generation bumped, traffic flows again.
  void restart_device(std::uint16_t id);
  [[nodiscard]] bool device_down(std::uint16_t id) const {
    return down_devices_.count(id) != 0;
  }
  /// Cuts (or heals) the link between two nodes in both directions;
  /// packets crossing a cut link are dropped (packets_dropped_partition).
  void set_link_partitioned(NodeRef a, NodeRef b, bool partitioned);

  // --- traffic ----------------------------------------------------------------
  /// Called when a packet reaches a host. Handlers may send new packets.
  using HostHandler = std::function<void(Fabric&, std::uint16_t host, const Packet&)>;
  void set_host_handler(std::uint16_t host, HostHandler handler);

  /// Injects a packet at a host at the current simulation time.
  void send_from_host(std::uint16_t host, Packet packet);

  /// Schedules a callback `delay_ns` from now (host-side timers, e.g.
  /// retransmission timeouts).
  void schedule(double delay_ns, std::function<void(Fabric&)> callback);

  // --- simulation loop ---------------------------------------------------------
  /// Runs events until the queue drains or `max_time_ns` passes.
  /// Returns the final simulation time.
  double run(double max_time_ns = 1e18);
  [[nodiscard]] double now() const { return now_; }

  // --- statistics ----------------------------------------------------------------
  // Registry-backed counters ("fabric" registry): read like plain ints,
  // and obs::dump() includes them in BENCH_*.json snapshots.
  obs::Counter& packets_delivered = metrics_.counter("packets_delivered");
  obs::Counter& packets_dropped_loss = metrics_.counter("packets_dropped_loss");
  obs::Counter& packets_dropped_action = metrics_.counter("packets_dropped_action");
  obs::Counter& packets_forwarded = metrics_.counter("packets_forwarded");
  obs::Counter& packets_multicast = metrics_.counter("packets_multicast");
  obs::Counter& packets_duplicated = metrics_.counter("packets_duplicated");
  obs::Counter& packets_reordered = metrics_.counter("packets_reordered");
  obs::Counter& packets_dropped_device_down = metrics_.counter("packets_dropped_device_down");
  obs::Counter& packets_dropped_partition = metrics_.counter("packets_dropped_partition");
  /// NetCL packets addressed to a device that hosts no kernel for their
  /// computation id (misrouted tenant traffic; they pass through, §IV).
  obs::Counter& packets_unknown_computation =
      metrics_.counter("packets.unknown_computation");
  obs::Counter& timer_events = metrics_.counter("timer_events");

  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }

 private:
  struct Link {
    NodeRef peer;
    LinkConfig config;
    double next_free_ns = 0.0;  // serialization availability (per direction)
    bool partitioned = false;   // fault injection: drop everything
  };
  struct Event {
    double time_ns;
    std::uint64_t sequence;  // FIFO tiebreaker
    NodeRef at;
    Packet packet;
    std::function<void(Fabric&)> callback;  // timer event when set
    bool operator>(const Event& other) const {
      return std::tie(time_ns, sequence) > std::tie(other.time_ns, other.sequence);
    }
  };

  void deliver(const Event& event);
  void forward(NodeRef from, Packet&& packet, double depart_time);
  [[nodiscard]] NodeRef route_target(const Packet& packet) const;
  /// Next hop from `node` toward `target` (BFS shortest path, cached).
  [[nodiscard]] NodeRef next_hop(NodeRef node, NodeRef target);
  void transmit(NodeRef from, NodeRef to, Packet&& packet, double start_time);
  void invalidate_routes() { routes_.clear(); }

  std::map<NodeRef, std::vector<Link>> adjacency_;
  std::map<std::uint16_t, std::unique_ptr<SwitchDevice>> devices_;
  std::set<std::uint16_t> down_devices_;
  std::map<std::uint16_t, HostHandler> host_handlers_;
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::vector<NodeRef>> multicast_groups_;
  std::map<std::pair<NodeRef, NodeRef>, NodeRef> routes_;  // (from, target) -> next hop
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  double now_ = 0.0;
  std::uint64_t sequence_ = 0;
  SplitMix64 rng_;
};

}  // namespace netcl::sim
