#include "sim/packet.hpp"

namespace netcl::sim {

namespace {
int byte_width(const ArgSpec& arg) { return arg.type.bits <= 8 ? 1 : arg.type.bits / 8; }
}  // namespace

std::vector<std::uint8_t> encode_args(const KernelSpec& spec, const ArgValues& values) {
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(spec.byte_size()));
  for (std::size_t a = 0; a < spec.args.size(); ++a) {
    const ArgSpec& arg = spec.args[a];
    const int width = byte_width(arg);
    for (int e = 0; e < arg.count; ++e) {
      const std::uint64_t value =
          a < values.size() && e < static_cast<int>(values[a].size())
              ? arg.type.truncate(values[a][static_cast<std::size_t>(e)])
              : 0;
      for (int b = 0; b < width; ++b) {
        out.push_back(static_cast<std::uint8_t>(value >> (8 * b)));
      }
    }
  }
  return out;
}

ArgValues decode_args(const KernelSpec& spec, std::span<const std::uint8_t> data) {
  ArgValues values = make_args(spec);
  std::size_t pos = 0;
  for (std::size_t a = 0; a < spec.args.size(); ++a) {
    const ArgSpec& arg = spec.args[a];
    const int width = byte_width(arg);
    for (int e = 0; e < arg.count; ++e) {
      std::uint64_t value = 0;
      for (int b = 0; b < width; ++b) {
        if (pos < data.size()) value |= static_cast<std::uint64_t>(data[pos]) << (8 * b);
        ++pos;
      }
      values[a][static_cast<std::size_t>(e)] = value;
    }
  }
  return values;
}

ArgValues make_args(const KernelSpec& spec) {
  ArgValues values;
  values.reserve(spec.args.size());
  for (const ArgSpec& arg : spec.args) {
    values.emplace_back(static_cast<std::size_t>(arg.count), 0);
  }
  return values;
}

}  // namespace netcl::sim
