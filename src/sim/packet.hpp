// Packets and the NetCL wire format (paper Fig. 10).
//
// A NetCL-over-UDP packet is ETH|IP|UDP|netcl header|kernel-arg data. The
// simulator carries the parsed form; `encode_args`/`decode_args` implement
// the little-endian layout both the host runtime's pack/unpack and the
// device's parser use (one codec, so they cannot drift apart).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "frontend/sema.hpp"
#include "sim/telemetry.hpp"

namespace netcl::sim {

/// The NetCL shim header: src/dst are host ids, from/to device ids
/// (0 = none), comp the computation id.
struct NetclHeader {
  std::uint16_t src = 0;
  std::uint16_t dst = 0;
  std::uint16_t from = 0;
  std::uint16_t to = 0;
  std::uint8_t comp = 0;
  std::uint8_t flags = 0;
  std::uint16_t len = 0;

  static constexpr int kWireBytes = 12;
};

/// Decoded kernel-argument values: one vector per argument, `spec.count`
/// elements each.
using ArgValues = std::vector<std::vector<std::uint64_t>>;

struct Packet {
  bool has_netcl = false;
  NetclHeader netcl;
  std::vector<std::uint8_t> payload;  // encoded kernel arguments
  /// In-band telemetry (ISSUE 4): empty and unrequested unless the sender
  /// set kFlagTelemetry, in which case each hop appends a stamp. On the
  /// wire the hops travel in a trailer after the payload.
  TelemetryRecord telemetry;

  /// Approximate on-wire size: ETH(14)+IP(20)+UDP(8) + netcl + payload
  /// (+ INT trailer when requested).
  [[nodiscard]] int wire_bytes() const {
    return 14 + 20 + 8 + (has_netcl ? NetclHeader::kWireBytes : 0) +
           static_cast<int>(payload.size()) +
           (telemetry.requested ? static_cast<int>(trailer_bytes(telemetry.hops.size())) : 0);
  }
};

/// Serializes argument values per the kernel specification (little-endian,
/// natural widths, arguments in order). Values are truncated to their
/// argument width.
[[nodiscard]] std::vector<std::uint8_t> encode_args(const KernelSpec& spec,
                                                    const ArgValues& values);

/// Deserializes; returns zero-filled values when the buffer is short.
[[nodiscard]] ArgValues decode_args(const KernelSpec& spec, std::span<const std::uint8_t> data);

/// Zero-initialized argument values matching a specification.
[[nodiscard]] ArgValues make_args(const KernelSpec& spec);

}  // namespace netcl::sim
