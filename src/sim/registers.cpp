#include "sim/registers.hpp"

#include <cassert>

namespace netcl::sim {

RegisterFile::RegisterFile(const ir::Module& module) {
  for (const auto& global : module.globals()) {
    if (global->is_lookup) continue;
    storage_.emplace(global.get(),
                     std::vector<std::uint64_t>(
                         static_cast<std::size_t>(global->element_count()), 0));
  }
}

std::size_t RegisterFile::flatten(const ir::GlobalVar& global,
                                  const std::vector<std::uint64_t>& indices) const {
  std::size_t linear = 0;
  for (std::size_t d = 0; d < global.dims.size(); ++d) {
    const auto extent = static_cast<std::uint64_t>(global.dims[d]);
    const std::uint64_t index = d < indices.size() ? indices[d] % extent : 0;
    linear = linear * static_cast<std::size_t>(extent) + static_cast<std::size_t>(index);
  }
  return linear;
}

std::uint64_t RegisterFile::read(const ir::GlobalVar& global, std::size_t index) const {
  const auto it = storage_.find(&global);
  assert(it != storage_.end() && "register not in this device");
  return it->second[index % it->second.size()];
}

void RegisterFile::write(const ir::GlobalVar& global, std::size_t index, std::uint64_t value) {
  const auto it = storage_.find(&global);
  assert(it != storage_.end() && "register not in this device");
  it->second[index % it->second.size()] = global.elem_type.truncate(value);
}

std::pair<std::uint64_t, std::uint64_t> RegisterFile::atomic(const ir::GlobalVar& global,
                                                             std::size_t index, AtomicOpKind op,
                                                             std::uint64_t operand0,
                                                             std::uint64_t operand1) {
  const std::uint64_t old_value = read(global, index);
  const std::uint64_t new_value =
      ir::eval_atomic(op, old_value, operand0, operand1, global.elem_type);
  write(global, index, new_value);
  return {old_value, new_value};
}

void RegisterFile::reset() {
  for (auto& [global, values] : storage_) {
    std::fill(values.begin(), values.end(), 0);
  }
}

}  // namespace netcl::sim
