// Device register state: the stateful memory backing _net_/_managed_
// (non-lookup) globals in the simulator.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/eval.hpp"
#include "ir/ir.hpp"

namespace netcl::sim {

class RegisterFile {
 public:
  /// Registers every non-lookup global of the module, zero-initialized
  /// (global memory is zero-initialized per §V-B).
  explicit RegisterFile(const ir::Module& module);

  /// Flattens a multi-dimensional index (row-major, one entry per dim).
  /// Out-of-range indices wrap modulo the array extent, mirroring how
  /// hardware masks register addresses.
  [[nodiscard]] std::size_t flatten(const ir::GlobalVar& global,
                                    const std::vector<std::uint64_t>& indices) const;

  [[nodiscard]] std::uint64_t read(const ir::GlobalVar& global, std::size_t index) const;
  void write(const ir::GlobalVar& global, std::size_t index, std::uint64_t value);

  /// Applies an atomic RMW; returns {old value, new value}.
  std::pair<std::uint64_t, std::uint64_t> atomic(const ir::GlobalVar& global, std::size_t index,
                                                 AtomicOpKind op, std::uint64_t operand0,
                                                 std::uint64_t operand1);

  void reset();

  [[nodiscard]] bool contains(const ir::GlobalVar& global) const {
    return storage_.count(&global) != 0;
  }

 private:
  std::unordered_map<const ir::GlobalVar*, std::vector<std::uint64_t>> storage_;
};

}  // namespace netcl::sim
