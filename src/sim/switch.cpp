#include "sim/switch.hpp"

#include <cassert>

#include "ir/eval.hpp"

namespace netcl::sim {

using namespace netcl::ir;

SwitchDevice::SwitchDevice(std::uint16_t device_id, std::unique_ptr<ir::Module> module,
                           std::vector<p4::KernelProgram> kernels, int stages_used)
    : device_id_(device_id), module_(std::move(module)), kernels_(std::move(kernels)),
      stages_used_(stages_used), rng_(0x5EEDBA5Eu ^ device_id) {
  registers_ = std::make_unique<RegisterFile>(*module_);
  tables_ = std::make_unique<TableSet>(*module_);
  for (const p4::KernelProgram& kernel : kernels_) {
    by_computation_[kernel.fn->computation()] = &kernel;
  }
}

SwitchDevice::SwitchDevice(std::uint16_t device_id)
    : device_id_(device_id), rng_(0x5EEDBA5Eu ^ device_id) {}

double SwitchDevice::pipeline_latency_ns() const {
  if (stages_used_ <= 0) return 0.0;
  return latency_.worst_case_ns(stages_used_);
}

const KernelSpec* SwitchDevice::spec_for(int computation) const {
  const auto it = by_computation_.find(computation);
  return it == by_computation_.end() ? nullptr : &it->second->fn->spec;
}

namespace {

/// Little-endian bytes of one value at its natural width, for hash inputs.
void append_bytes(std::vector<std::uint8_t>& out, std::uint64_t value, ScalarType type) {
  const int width = type.bits <= 8 ? 1 : type.bits / 8;
  for (int b = 0; b < width; ++b) out.push_back(static_cast<std::uint8_t>(value >> (8 * b)));
}

}  // namespace

ComputeOutcome SwitchDevice::execute(int computation, ArgValues& args,
                                     const NetclHeader& header) {
  ++stats.packets_processed;
  const auto it = by_computation_.find(computation);
  if (it == by_computation_.end()) {
    ++stats.no_kernel;
    return {};  // no kernel here: no-op (§IV)
  }
  ++stats.kernels_executed;

  const p4::KernelProgram& program = *it->second;
  std::unordered_map<const Value*, std::uint64_t> env;
  std::unordered_map<const LocalArray*, std::vector<std::uint64_t>> locals;

  auto eval = [&](const Value* v) -> std::uint64_t {
    if (v == nullptr) return 1;  // absent guard = always true
    if (const Constant* c = as_constant(v)) return c->value();
    if (v->kind() == ValueKind::Argument) {
      const auto* arg = static_cast<const Argument*>(v);
      return args[static_cast<std::size_t>(arg->index())][0];
    }
    const auto found = env.find(v);
    return found == env.end() ? 0 : found->second;
  };

  ComputeOutcome outcome;
  bool action_chosen = false;

  for (const p4::LinearInst& li : program.insts) {
    const Instruction& inst = *li.inst;
    const bool guard_true = li.guard == nullptr || eval(li.guard) != 0;

    if (guard_true && li.stage >= 0) {
      if (stats.stage_executions.size() <= static_cast<std::size_t>(li.stage)) {
        stats.stage_executions.resize(static_cast<std::size_t>(li.stage) + 1, 0);
      }
      ++stats.stage_executions[static_cast<std::size_t>(li.stage)];
      ++outcome.stage_ops;
    }

    switch (inst.op()) {
      case Opcode::Bin:
        env[&inst] = eval_bin(inst.bin_kind, eval(inst.operand(0)), eval(inst.operand(1)),
                              inst.type());
        break;
      case Opcode::ICmp:
        env[&inst] = eval_icmp(inst.icmp_pred, eval(inst.operand(0)), eval(inst.operand(1)),
                               inst.operand(0)->type())
                         ? 1
                         : 0;
        break;
      case Opcode::Select:
        env[&inst] = eval(inst.operand(0)) != 0 ? eval(inst.operand(1)) : eval(inst.operand(2));
        break;
      case Opcode::Cast: {
        const Value* operand = inst.operand(0);
        std::uint64_t value = eval(operand);
        if (inst.cast_signed && inst.type().bits > operand->type().bits) {
          value = static_cast<std::uint64_t>(operand->type().extend(value));
        }
        env[&inst] = inst.type().truncate(value);
        break;
      }
      case Opcode::Hash: {
        std::vector<std::uint8_t> bytes;
        for (std::size_t i = 0; i < inst.num_operands(); ++i) {
          append_bytes(bytes, eval(inst.operand(i)), inst.operand(i)->type());
        }
        std::uint64_t digest = 0;
        switch (inst.hash_kind) {
          case HashKind::Crc16: digest = crc16(bytes); break;
          case HashKind::Crc32: digest = crc32(bytes); break;
          case HashKind::Xor16: digest = xor16(bytes); break;
          case HashKind::Identity:
            digest = bytes.empty() ? 0 : eval(inst.operand(0));
            break;
        }
        env[&inst] = inst.type().truncate(digest);
        break;
      }
      case Opcode::Rand:
        env[&inst] = inst.type().truncate(rng_.next());
        break;
      case Opcode::MsgMeta: {
        const std::uint16_t fields[4] = {header.src, header.dst, header.from, header.to};
        env[&inst] = fields[inst.arg_index & 3];
        break;
      }
      case Opcode::Clz: {
        const ScalarType type = inst.operand(0)->type();
        const std::uint64_t value = type.truncate(eval(inst.operand(0)));
        int count = 0;
        for (int bit = type.bits - 1; bit >= 0; --bit) {
          if ((value >> bit) & 1) break;
          ++count;
        }
        env[&inst] = static_cast<std::uint64_t>(count);
        break;
      }
      case Opcode::Bswap: {
        const unsigned bytes = inst.type().bits <= 8 ? 1u : inst.type().bits / 8u;
        const std::uint64_t value = eval(inst.operand(0));
        std::uint64_t swapped = 0;
        for (unsigned b = 0; b < bytes; ++b) {
          swapped = (swapped << 8) | ((value >> (8 * b)) & 0xFF);
        }
        env[&inst] = swapped;
        break;
      }
      case Opcode::LoadMsg: {
        const auto index = static_cast<std::size_t>(eval(inst.operand(0)));
        auto& arg = args[static_cast<std::size_t>(inst.arg_index)];
        env[&inst] = index < arg.size() ? arg[index] : 0;
        break;
      }
      case Opcode::StoreMsg: {
        if (!guard_true) break;
        const auto index = static_cast<std::size_t>(eval(inst.operand(0)));
        auto& arg = args[static_cast<std::size_t>(inst.arg_index)];
        if (index < arg.size()) {
          const ScalarType type =
              program.fn->spec.args[static_cast<std::size_t>(inst.arg_index)].type;
          arg[index] = type.truncate(eval(inst.operand(1)));
        }
        break;
      }
      case Opcode::LoadLocal: {
        auto& storage = locals[inst.local_array];
        if (storage.empty()) storage.assign(static_cast<std::size_t>(inst.local_array->size), 0);
        const auto index =
            static_cast<std::size_t>(eval(inst.operand(0))) % storage.size();
        env[&inst] = storage[index];
        break;
      }
      case Opcode::StoreLocal: {
        if (!guard_true) break;
        auto& storage = locals[inst.local_array];
        if (storage.empty()) storage.assign(static_cast<std::size_t>(inst.local_array->size), 0);
        const auto index =
            static_cast<std::size_t>(eval(inst.operand(0))) % storage.size();
        storage[index] = inst.local_array->elem_type.truncate(eval(inst.operand(1)));
        break;
      }
      case Opcode::LoadGlobal: {
        std::vector<std::uint64_t> indices;
        for (int i = 0; i < inst.num_indices; ++i) indices.push_back(eval(inst.operand(i)));
        env[&inst] = registers_->read(*inst.global, registers_->flatten(*inst.global, indices));
        ++register_access_[inst.global].reads;
        break;
      }
      case Opcode::StoreGlobal: {
        if (!guard_true) break;
        std::vector<std::uint64_t> indices;
        for (int i = 0; i < inst.num_indices; ++i) indices.push_back(eval(inst.operand(i)));
        registers_->write(*inst.global, registers_->flatten(*inst.global, indices),
                          eval(inst.operand(inst.num_operands() - 1)));
        ++register_access_[inst.global].writes;
        break;
      }
      case Opcode::AtomicRMW: {
        std::vector<std::uint64_t> indices;
        for (int i = 0; i < inst.num_indices; ++i) indices.push_back(eval(inst.operand(i)));
        const std::size_t index = registers_->flatten(*inst.global, indices);
        std::size_t next = static_cast<std::size_t>(inst.num_indices);
        bool cond = true;
        if (inst.atomic_cond) cond = eval(inst.operand(next++)) != 0;
        const std::uint64_t operand0 =
            next < inst.num_operands() ? eval(inst.operand(next)) : 0;
        const std::uint64_t operand1 =
            next + 1 < inst.num_operands() ? eval(inst.operand(next + 1)) : 0;
        const std::uint64_t old_value = registers_->read(*inst.global, index);
        ++register_access_[inst.global].reads;
        if (guard_true && cond) {
          ++register_access_[inst.global].writes;
          const auto [old_v, new_v] =
              registers_->atomic(*inst.global, index, inst.atomic_op, operand0, operand1);
          // *_new returns the value after the operation; plain atomics the
          // value before (§V-B).
          env[&inst] = inst.atomic_new ? new_v : old_v;
        } else {
          // Not performed: both variants observe the unchanged value.
          env[&inst] = old_value;
        }
        break;
      }
      case Opcode::Lookup: {
        const LookupTable* table = tables_->find(*inst.global);
        assert(table != nullptr);
        const MatchResult match = table->match(eval(inst.operand(0)));
        env[&inst] = match.hit ? 1 : 0;
        break;
      }
      case Opcode::LookupValue: {
        const LookupTable* table = tables_->find(*inst.global);
        assert(table != nullptr);
        // Re-match through the paired Lookup's key operand.
        const auto* lookup = static_cast<const Instruction*>(inst.operand(0));
        const MatchResult match = table->match(eval(lookup->operand(0)));
        env[&inst] = match.hit ? match.value : eval(inst.operand(1));
        break;
      }
      case Opcode::RetAction: {
        if (guard_true && !action_chosen) {
          action_chosen = true;
          outcome.action = inst.action;
          if (inst.num_operands() > 0) {
            outcome.target = static_cast<std::uint16_t>(eval(inst.operand(0)));
          }
        }
        break;
      }
      case Opcode::Phi:
      case Opcode::Br:
      case Opcode::CondBr:
      case Opcode::Ret:
        assert(false && "control flow must not survive linearization");
        break;
    }
  }

  outcome.executed = true;
  return outcome;
}

// --- control plane -----------------------------------------------------------

SwitchDevice::Resolved SwitchDevice::resolve(const std::string& name,
                                             const std::vector<std::uint64_t>& indices) const {
  Resolved resolved;
  if (module_ == nullptr) return resolved;
  if (GlobalVar* global = module_->find_global(name)) {
    resolved.global = global;
    resolved.indices = indices;
    return resolved;
  }
  // Access-based partitioning renamed name -> name$<outer>; map the first
  // index onto the partition.
  if (!indices.empty()) {
    const std::string part = name + "$" + std::to_string(indices[0]);
    if (GlobalVar* global = module_->find_global(part)) {
      resolved.global = global;
      resolved.indices.assign(indices.begin() + 1, indices.end());
      return resolved;
    }
  }
  return resolved;
}

bool SwitchDevice::managed_write(const std::string& name,
                                 const std::vector<std::uint64_t>& indices,
                                 std::uint64_t value) {
  const Resolved r = resolve(name, indices);
  if (r.global == nullptr || !r.global->is_managed || r.global->is_lookup) return false;
  registers_->write(*r.global, registers_->flatten(*r.global, r.indices), value);
  ++stats.control_writes;
  return true;
}

bool SwitchDevice::managed_read(const std::string& name,
                                const std::vector<std::uint64_t>& indices, std::uint64_t& out) {
  const Resolved r = resolve(name, indices);
  if (r.global == nullptr || !r.global->is_managed || r.global->is_lookup) return false;
  out = registers_->read(*r.global, registers_->flatten(*r.global, r.indices));
  ++stats.control_reads;
  return true;
}

bool SwitchDevice::lookup_insert(const std::string& name, std::uint64_t key_lo,
                                 std::uint64_t key_hi, std::uint64_t value) {
  const Resolved r = resolve(name, {});
  if (r.global == nullptr || !r.global->is_lookup) return false;
  LookupTable* table = tables_->find(*r.global);
  const bool ok = table != nullptr && table->insert(key_lo, key_hi, value);
  if (ok) ++stats.control_writes;
  return ok;
}

bool SwitchDevice::lookup_remove(const std::string& name, std::uint64_t key) {
  const Resolved r = resolve(name, {});
  if (r.global == nullptr || !r.global->is_lookup) return false;
  LookupTable* table = tables_->find(*r.global);
  const bool ok = table != nullptr && table->remove(key);
  if (ok) ++stats.control_writes;
  return ok;
}

bool SwitchDevice::debug_read(const std::string& name,
                              const std::vector<std::uint64_t>& indices,
                              std::uint64_t& out) const {
  const Resolved r = resolve(name, indices);
  if (r.global == nullptr || r.global->is_lookup) return false;
  out = registers_->read(*r.global, registers_->flatten(*r.global, r.indices));
  return true;
}

void SwitchDevice::reset_state() {
  if (registers_ != nullptr) registers_->reset();
}

void SwitchDevice::restart() {
  reset_state();
  // Rebuild the tables so control-plane inserts vanish and declaration
  // const entries come back — the state a freshly exec'd daemon would have.
  if (module_ != nullptr) tables_ = std::make_unique<TableSet>(*module_);
  ++generation_;
}

std::map<std::string, RegisterAccess> SwitchDevice::register_access() const {
  std::map<std::string, RegisterAccess> out;
  for (const auto& [global, access] : register_access_) out[global->name] = access;
  return out;
}

void SwitchDevice::reset_stats() {
  stats = DeviceStats{};
  register_access_.clear();
}

}  // namespace netcl::sim
