#include "sim/switch.hpp"

#include <cassert>

#include "ir/eval.hpp"
#include "p4/resources.hpp"

namespace netcl::sim {

using namespace netcl::ir;
using runtime::Error;
using runtime::ErrorKind;

SwitchDevice::SwitchDevice(std::uint16_t device_id, std::unique_ptr<ir::Module> module,
                           std::vector<p4::KernelProgram> kernels, int stages_used)
    : device_id_(device_id) {
  ProgramArtifact artifact;
  artifact.name = "program";
  artifact.module = std::move(module);
  artifact.kernels = std::move(kernels);
  artifact.stages_used = stages_used;
  // No per_stage accounting: the legacy single-program path loads
  // admission-exempt, exactly as before ISSUE 7.
  const Error err = load_program(0, std::move(artifact));
  (void)err;
  assert(err.ok());
}

SwitchDevice::SwitchDevice(std::uint16_t device_id) : device_id_(device_id) {}

double SwitchDevice::pipeline_latency_ns() const {
  if (stages_used_ <= 0) return 0.0;
  return latency_.worst_case_ns(stages_used_);
}

const ir::Module* SwitchDevice::module() const {
  return tenants_.empty() ? nullptr : tenants_.begin()->second.module.get();
}

// --- tenant management -------------------------------------------------------

void SwitchDevice::attach(TenantId id, Tenant& tenant) {
  for (const p4::KernelProgram& kernel : tenant.kernels) {
    by_computation_[kernel.fn->computation()] = {id, &kernel};
  }
}

void SwitchDevice::detach(TenantId id, Tenant& tenant) {
  for (const p4::KernelProgram& kernel : tenant.kernels) {
    const auto it = by_computation_.find(kernel.fn->computation());
    if (it != by_computation_.end() && it->second.first == id) by_computation_.erase(it);
  }
}

void SwitchDevice::refresh_stages() {
  stages_used_ = 0;
  for (const auto& [id, tenant] : tenants_) {
    stages_used_ = std::max(stages_used_, tenant.stages_used);
  }
}

Error SwitchDevice::load_program(TenantId tenant_id, ProgramArtifact artifact) {
  if (tenants_.count(tenant_id) != 0) {
    return {ErrorKind::kRejected, "tenant " + std::to_string(tenant_id) +
                                      " is already resident (use swap to replace it)"};
  }
  if (max_tenants_ != 0 && tenants_.size() >= max_tenants_) {
    return {ErrorKind::kRejected, "device " + std::to_string(device_id_) + " is at --max-tenants (" +
                                      std::to_string(max_tenants_) + ")"};
  }
  if (artifact.module == nullptr) {
    return {ErrorKind::kRejected, "artifact has no compiled module"};
  }
  for (const p4::KernelProgram& kernel : artifact.kernels) {
    const auto it = by_computation_.find(kernel.fn->computation());
    if (it != by_computation_.end()) {
      return {ErrorKind::kRejected,
              "computation " + std::to_string(kernel.fn->computation()) +
                  " is already served by tenant " + std::to_string(it->second.first)};
    }
  }
  if (!artifact.per_stage.empty()) {
    const p4::AdmissionReport report = admission_.admit(tenant_id, artifact.per_stage);
    if (!report.admitted) {
      return {ErrorKind::kRejected,
              report.reason + "\n" + report.to_string(admission_.limits())};
    }
  }

  Tenant& tenant = tenants_[tenant_id];
  tenant.name = std::move(artifact.name);
  tenant.module = std::move(artifact.module);
  tenant.kernels = std::move(artifact.kernels);
  tenant.stages_used = artifact.stages_used;
  tenant.per_stage = std::move(artifact.per_stage);
  tenant.registers = std::make_unique<RegisterFile>(*tenant.module);
  tenant.tables = std::make_unique<TableSet>(*tenant.module);
  tenant.rng = SplitMix64{0x5EEDBA5Eu ^ device_id_};
  attach(tenant_id, tenant);
  refresh_stages();
  return {};
}

Error SwitchDevice::unload_program(TenantId tenant_id) {
  const auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    return {ErrorKind::kRejected, "tenant " + std::to_string(tenant_id) + " is not resident"};
  }
  detach(tenant_id, it->second);
  admission_.release(tenant_id);
  tenants_.erase(it);
  refresh_stages();
  return {};
}

Error SwitchDevice::swap_program(TenantId tenant_id, ProgramArtifact artifact) {
  const auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    return {ErrorKind::kRejected,
            "tenant " + std::to_string(tenant_id) + " is not resident (load it first)"};
  }
  if (artifact.module == nullptr) {
    return {ErrorKind::kRejected, "artifact has no compiled module"};
  }
  Tenant& tenant = it->second;
  for (const p4::KernelProgram& kernel : artifact.kernels) {
    const auto found = by_computation_.find(kernel.fn->computation());
    if (found != by_computation_.end() && found->second.first != tenant_id) {
      return {ErrorKind::kRejected,
              "computation " + std::to_string(kernel.fn->computation()) +
                  " is already served by tenant " + std::to_string(found->second.first)};
    }
  }
  // Re-admit under the budget with the old reservation released; on
  // rejection the old reservation (and the running program) stay in place.
  const bool was_accounted = !tenant.per_stage.empty();
  if (was_accounted) admission_.release(tenant_id);
  if (!artifact.per_stage.empty()) {
    const p4::AdmissionReport report = admission_.admit(tenant_id, artifact.per_stage);
    if (!report.admitted) {
      if (was_accounted) admission_.admit(tenant_id, tenant.per_stage);
      return {ErrorKind::kRejected,
              report.reason + "\n" + report.to_string(admission_.limits())};
    }
  }

  detach(tenant_id, tenant);
  tenant.name = std::move(artifact.name);
  tenant.module = std::move(artifact.module);
  tenant.kernels = std::move(artifact.kernels);
  tenant.stages_used = artifact.stages_used;
  tenant.per_stage = std::move(artifact.per_stage);
  // Fresh state, like a per-tenant restart: the host journal replays
  // managed writes/inserts on top (DeviceConnection::resync).
  tenant.registers = std::make_unique<RegisterFile>(*tenant.module);
  tenant.tables = std::make_unique<TableSet>(*tenant.module);
  tenant.rng = SplitMix64{0x5EEDBA5Eu ^ device_id_};
  tenant.register_access.clear();
  // stats survive: they belong to the observer, and the zero-drop
  // assertion in the co-residency scenario reads them across the swap.
  attach(tenant_id, tenant);
  refresh_stages();
  return {};
}

bool SwitchDevice::set_stage_limits(p4::StageLimits limits, int base_stages) {
  if (!tenants_.empty()) return false;
  admission_ = p4::AdmissionController(limits, base_stages);
  return true;
}

std::vector<TenantInfo> SwitchDevice::tenant_table() const {
  std::vector<TenantInfo> out;
  out.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) {
    TenantInfo info;
    info.id = id;
    info.name = tenant.name;
    info.stages_used = tenant.stages_used;
    for (const p4::KernelProgram& kernel : tenant.kernels) {
      info.computations.push_back(kernel.fn->computation());
    }
    if (tenant.per_stage.empty()) {
      info.usage = "unaccounted";
    } else {
      p4::StageUsage worst;
      for (const p4::StageUsage& usage : tenant.per_stage) {
        worst.sram = std::max(worst.sram, usage.sram);
        worst.tcam = std::max(worst.tcam, usage.tcam);
        worst.salus = std::max(worst.salus, usage.salus);
        worst.vliw = std::max(worst.vliw, usage.vliw);
        worst.hash = std::max(worst.hash, usage.hash);
        worst.tables = std::max(worst.tables, usage.tables);
      }
      info.usage = p4::to_string(worst);
    }
    info.stats = tenant.stats;
    out.push_back(std::move(info));
  }
  return out;
}

const DeviceStats* SwitchDevice::tenant_stats(TenantId tenant_id) const {
  const auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? nullptr : &it->second.stats;
}

const KernelSpec* SwitchDevice::spec_for(int computation) const {
  const auto it = by_computation_.find(computation);
  return it == by_computation_.end() ? nullptr : &it->second.second->fn->spec;
}

const TenantId* SwitchDevice::tenant_for(int computation) const {
  const auto it = by_computation_.find(computation);
  return it == by_computation_.end() ? nullptr : &it->second.first;
}

namespace {

/// Little-endian bytes of one value at its natural width, for hash inputs.
void append_bytes(std::vector<std::uint8_t>& out, std::uint64_t value, ScalarType type) {
  const int width = type.bits <= 8 ? 1 : type.bits / 8;
  for (int b = 0; b < width; ++b) out.push_back(static_cast<std::uint8_t>(value >> (8 * b)));
}

}  // namespace

ComputeOutcome SwitchDevice::execute(int computation, ArgValues& args,
                                     const NetclHeader& header) {
  ++stats.packets_processed;
  const auto it = by_computation_.find(computation);
  if (it == by_computation_.end()) {
    ++stats.no_kernel;
    return {};  // no kernel here: no-op (§IV)
  }
  Tenant& tenant = tenants_.at(it->second.first);
  ++stats.kernels_executed;
  ++tenant.stats.packets_processed;
  ++tenant.stats.kernels_executed;

  const p4::KernelProgram& program = *it->second.second;
  std::unordered_map<const Value*, std::uint64_t> env;
  std::unordered_map<const LocalArray*, std::vector<std::uint64_t>> locals;

  auto eval = [&](const Value* v) -> std::uint64_t {
    if (v == nullptr) return 1;  // absent guard = always true
    if (const Constant* c = as_constant(v)) return c->value();
    if (v->kind() == ValueKind::Argument) {
      const auto* arg = static_cast<const Argument*>(v);
      return args[static_cast<std::size_t>(arg->index())][0];
    }
    const auto found = env.find(v);
    return found == env.end() ? 0 : found->second;
  };

  ComputeOutcome outcome;
  bool action_chosen = false;

  for (const p4::LinearInst& li : program.insts) {
    const Instruction& inst = *li.inst;
    const bool guard_true = li.guard == nullptr || eval(li.guard) != 0;

    if (guard_true && li.stage >= 0) {
      const auto stage = static_cast<std::size_t>(li.stage);
      if (stats.stage_executions.size() <= stage) {
        stats.stage_executions.resize(stage + 1, 0);
      }
      if (tenant.stats.stage_executions.size() <= stage) {
        tenant.stats.stage_executions.resize(stage + 1, 0);
      }
      ++stats.stage_executions[stage];
      ++tenant.stats.stage_executions[stage];
      ++outcome.stage_ops;
    }

    switch (inst.op()) {
      case Opcode::Bin:
        env[&inst] = eval_bin(inst.bin_kind, eval(inst.operand(0)), eval(inst.operand(1)),
                              inst.type());
        break;
      case Opcode::ICmp:
        env[&inst] = eval_icmp(inst.icmp_pred, eval(inst.operand(0)), eval(inst.operand(1)),
                               inst.operand(0)->type())
                         ? 1
                         : 0;
        break;
      case Opcode::Select:
        env[&inst] = eval(inst.operand(0)) != 0 ? eval(inst.operand(1)) : eval(inst.operand(2));
        break;
      case Opcode::Cast: {
        const Value* operand = inst.operand(0);
        std::uint64_t value = eval(operand);
        if (inst.cast_signed && inst.type().bits > operand->type().bits) {
          value = static_cast<std::uint64_t>(operand->type().extend(value));
        }
        env[&inst] = inst.type().truncate(value);
        break;
      }
      case Opcode::Hash: {
        std::vector<std::uint8_t> bytes;
        for (std::size_t i = 0; i < inst.num_operands(); ++i) {
          append_bytes(bytes, eval(inst.operand(i)), inst.operand(i)->type());
        }
        std::uint64_t digest = 0;
        switch (inst.hash_kind) {
          case HashKind::Crc16: digest = crc16(bytes); break;
          case HashKind::Crc32: digest = crc32(bytes); break;
          case HashKind::Xor16: digest = xor16(bytes); break;
          case HashKind::Identity:
            digest = bytes.empty() ? 0 : eval(inst.operand(0));
            break;
        }
        env[&inst] = inst.type().truncate(digest);
        break;
      }
      case Opcode::Rand:
        env[&inst] = inst.type().truncate(tenant.rng.next());
        break;
      case Opcode::MsgMeta: {
        const std::uint16_t fields[4] = {header.src, header.dst, header.from, header.to};
        env[&inst] = fields[inst.arg_index & 3];
        break;
      }
      case Opcode::Clz: {
        const ScalarType type = inst.operand(0)->type();
        const std::uint64_t value = type.truncate(eval(inst.operand(0)));
        int count = 0;
        for (int bit = type.bits - 1; bit >= 0; --bit) {
          if ((value >> bit) & 1) break;
          ++count;
        }
        env[&inst] = static_cast<std::uint64_t>(count);
        break;
      }
      case Opcode::Bswap: {
        const unsigned bytes = inst.type().bits <= 8 ? 1u : inst.type().bits / 8u;
        const std::uint64_t value = eval(inst.operand(0));
        std::uint64_t swapped = 0;
        for (unsigned b = 0; b < bytes; ++b) {
          swapped = (swapped << 8) | ((value >> (8 * b)) & 0xFF);
        }
        env[&inst] = swapped;
        break;
      }
      case Opcode::LoadMsg: {
        const auto index = static_cast<std::size_t>(eval(inst.operand(0)));
        auto& arg = args[static_cast<std::size_t>(inst.arg_index)];
        env[&inst] = index < arg.size() ? arg[index] : 0;
        break;
      }
      case Opcode::StoreMsg: {
        if (!guard_true) break;
        const auto index = static_cast<std::size_t>(eval(inst.operand(0)));
        auto& arg = args[static_cast<std::size_t>(inst.arg_index)];
        if (index < arg.size()) {
          const ScalarType type =
              program.fn->spec.args[static_cast<std::size_t>(inst.arg_index)].type;
          arg[index] = type.truncate(eval(inst.operand(1)));
        }
        break;
      }
      case Opcode::LoadLocal: {
        auto& storage = locals[inst.local_array];
        if (storage.empty()) storage.assign(static_cast<std::size_t>(inst.local_array->size), 0);
        const auto index =
            static_cast<std::size_t>(eval(inst.operand(0))) % storage.size();
        env[&inst] = storage[index];
        break;
      }
      case Opcode::StoreLocal: {
        if (!guard_true) break;
        auto& storage = locals[inst.local_array];
        if (storage.empty()) storage.assign(static_cast<std::size_t>(inst.local_array->size), 0);
        const auto index =
            static_cast<std::size_t>(eval(inst.operand(0))) % storage.size();
        storage[index] = inst.local_array->elem_type.truncate(eval(inst.operand(1)));
        break;
      }
      case Opcode::LoadGlobal: {
        std::vector<std::uint64_t> indices;
        for (int i = 0; i < inst.num_indices; ++i) indices.push_back(eval(inst.operand(i)));
        env[&inst] = tenant.registers->read(*inst.global,
                                            tenant.registers->flatten(*inst.global, indices));
        ++tenant.register_access[inst.global].reads;
        break;
      }
      case Opcode::StoreGlobal: {
        if (!guard_true) break;
        std::vector<std::uint64_t> indices;
        for (int i = 0; i < inst.num_indices; ++i) indices.push_back(eval(inst.operand(i)));
        tenant.registers->write(*inst.global, tenant.registers->flatten(*inst.global, indices),
                                eval(inst.operand(inst.num_operands() - 1)));
        ++tenant.register_access[inst.global].writes;
        break;
      }
      case Opcode::AtomicRMW: {
        std::vector<std::uint64_t> indices;
        for (int i = 0; i < inst.num_indices; ++i) indices.push_back(eval(inst.operand(i)));
        const std::size_t index = tenant.registers->flatten(*inst.global, indices);
        std::size_t next = static_cast<std::size_t>(inst.num_indices);
        bool cond = true;
        if (inst.atomic_cond) cond = eval(inst.operand(next++)) != 0;
        const std::uint64_t operand0 =
            next < inst.num_operands() ? eval(inst.operand(next)) : 0;
        const std::uint64_t operand1 =
            next + 1 < inst.num_operands() ? eval(inst.operand(next + 1)) : 0;
        const std::uint64_t old_value = tenant.registers->read(*inst.global, index);
        ++tenant.register_access[inst.global].reads;
        if (guard_true && cond) {
          ++tenant.register_access[inst.global].writes;
          const auto [old_v, new_v] =
              tenant.registers->atomic(*inst.global, index, inst.atomic_op, operand0, operand1);
          // *_new returns the value after the operation; plain atomics the
          // value before (§V-B).
          env[&inst] = inst.atomic_new ? new_v : old_v;
        } else {
          // Not performed: both variants observe the unchanged value.
          env[&inst] = old_value;
        }
        break;
      }
      case Opcode::Lookup: {
        const LookupTable* table = tenant.tables->find(*inst.global);
        assert(table != nullptr);
        const MatchResult match = table->match(eval(inst.operand(0)));
        env[&inst] = match.hit ? 1 : 0;
        break;
      }
      case Opcode::LookupValue: {
        const LookupTable* table = tenant.tables->find(*inst.global);
        assert(table != nullptr);
        // Re-match through the paired Lookup's key operand.
        const auto* lookup = static_cast<const Instruction*>(inst.operand(0));
        const MatchResult match = table->match(eval(lookup->operand(0)));
        env[&inst] = match.hit ? match.value : eval(inst.operand(1));
        break;
      }
      case Opcode::RetAction: {
        if (guard_true && !action_chosen) {
          action_chosen = true;
          outcome.action = inst.action;
          if (inst.num_operands() > 0) {
            outcome.target = static_cast<std::uint16_t>(eval(inst.operand(0)));
          }
        }
        break;
      }
      case Opcode::Phi:
      case Opcode::Br:
      case Opcode::CondBr:
      case Opcode::Ret:
        assert(false && "control flow must not survive linearization");
        break;
    }
  }

  // Per-tenant action outcomes, recorded at decision time (the aggregate
  // drops_action/multicasts stay fabric-filled at apply time).
  if (outcome.action == ActionKind::Drop) ++tenant.stats.drops_action;
  if (outcome.action == ActionKind::Multicast) ++tenant.stats.multicasts;

  outcome.executed = true;
  return outcome;
}

// --- control plane -----------------------------------------------------------

SwitchDevice::Resolved SwitchDevice::resolve_in(Tenant& tenant, const std::string& name,
                                                const std::vector<std::uint64_t>& indices) const {
  Resolved resolved;
  if (tenant.module == nullptr) return resolved;
  if (GlobalVar* global = tenant.module->find_global(name)) {
    resolved.tenant = &tenant;
    resolved.global = global;
    resolved.indices = indices;
    return resolved;
  }
  // Access-based partitioning renamed name -> name$<outer>; map the first
  // index onto the partition.
  if (!indices.empty()) {
    const std::string part = name + "$" + std::to_string(indices[0]);
    if (GlobalVar* global = tenant.module->find_global(part)) {
      resolved.tenant = &tenant;
      resolved.global = global;
      resolved.indices.assign(indices.begin() + 1, indices.end());
      return resolved;
    }
  }
  return resolved;
}

SwitchDevice::Resolved SwitchDevice::resolve(const std::string& name,
                                             const std::vector<std::uint64_t>& indices) const {
  auto* self = const_cast<SwitchDevice*>(this);
  // "12:name" pins the lookup to tenant 12 — the disambiguator for
  // colliding global names across tenants.
  const std::size_t colon = name.find(':');
  if (colon != std::string::npos && colon > 0) {
    bool numeric = true;
    for (std::size_t i = 0; i < colon; ++i) {
      numeric = numeric && name[i] >= '0' && name[i] <= '9';
    }
    if (numeric) {
      const auto tenant_id = static_cast<TenantId>(std::stoul(name.substr(0, colon)));
      const auto it = self->tenants_.find(tenant_id);
      if (it == self->tenants_.end()) return {};
      return resolve_in(it->second, name.substr(colon + 1), indices);
    }
  }
  // Unscoped: a unique match across tenants wins; an ambiguous name (two
  // tenants declaring the same global) resolves to nothing, preserving
  // isolation — callers must scope explicitly.
  Resolved match;
  int matches = 0;
  for (auto& [id, tenant] : self->tenants_) {
    Resolved candidate = resolve_in(tenant, name, indices);
    if (candidate.global != nullptr) {
      match = std::move(candidate);
      ++matches;
    }
  }
  return matches == 1 ? match : Resolved{};
}

bool SwitchDevice::managed_write(const std::string& name,
                                 const std::vector<std::uint64_t>& indices,
                                 std::uint64_t value) {
  const Resolved r = resolve(name, indices);
  if (r.global == nullptr || !r.global->is_managed || r.global->is_lookup) return false;
  r.tenant->registers->write(*r.global, r.tenant->registers->flatten(*r.global, r.indices), value);
  ++stats.control_writes;
  ++r.tenant->stats.control_writes;
  return true;
}

bool SwitchDevice::managed_read(const std::string& name,
                                const std::vector<std::uint64_t>& indices, std::uint64_t& out) {
  const Resolved r = resolve(name, indices);
  if (r.global == nullptr || !r.global->is_managed || r.global->is_lookup) return false;
  out = r.tenant->registers->read(*r.global, r.tenant->registers->flatten(*r.global, r.indices));
  ++stats.control_reads;
  ++r.tenant->stats.control_reads;
  return true;
}

bool SwitchDevice::lookup_insert(const std::string& name, std::uint64_t key_lo,
                                 std::uint64_t key_hi, std::uint64_t value) {
  const Resolved r = resolve(name, {});
  if (r.global == nullptr || !r.global->is_lookup) return false;
  LookupTable* table = r.tenant->tables->find(*r.global);
  const bool ok = table != nullptr && table->insert(key_lo, key_hi, value);
  if (ok) {
    ++stats.control_writes;
    ++r.tenant->stats.control_writes;
  }
  return ok;
}

bool SwitchDevice::lookup_remove(const std::string& name, std::uint64_t key) {
  const Resolved r = resolve(name, {});
  if (r.global == nullptr || !r.global->is_lookup) return false;
  LookupTable* table = r.tenant->tables->find(*r.global);
  const bool ok = table != nullptr && table->remove(key);
  if (ok) {
    ++stats.control_writes;
    ++r.tenant->stats.control_writes;
  }
  return ok;
}

bool SwitchDevice::debug_read(const std::string& name,
                              const std::vector<std::uint64_t>& indices,
                              std::uint64_t& out) const {
  const Resolved r = resolve(name, indices);
  if (r.global == nullptr || r.global->is_lookup) return false;
  out = r.tenant->registers->read(*r.global, r.tenant->registers->flatten(*r.global, r.indices));
  return true;
}

void SwitchDevice::reset_state() {
  for (auto& [id, tenant] : tenants_) {
    if (tenant.registers != nullptr) tenant.registers->reset();
  }
}

void SwitchDevice::restart() {
  reset_state();
  // Rebuild the tables so control-plane inserts vanish and declaration
  // const entries come back — the state a freshly exec'd daemon would have.
  for (auto& [id, tenant] : tenants_) {
    if (tenant.module != nullptr) tenant.tables = std::make_unique<TableSet>(*tenant.module);
  }
  ++generation_;
}

std::map<std::string, RegisterAccess> SwitchDevice::register_access() const {
  std::map<std::string, RegisterAccess> out;
  for (const auto& [id, tenant] : tenants_) {
    for (const auto& [global, access] : tenant.register_access) {
      RegisterAccess& merged = out[global->name];
      merged.reads += access.reads;
      merged.writes += access.writes;
    }
  }
  return out;
}

void SwitchDevice::reset_stats() {
  stats = DeviceStats{};
  for (auto& [id, tenant] : tenants_) {
    tenant.stats = DeviceStats{};
    tenant.register_access.clear();
  }
}

}  // namespace netcl::sim
