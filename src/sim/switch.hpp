// The simulated PDP switch: executes compiled NetCL pipeline programs
// against live register/table state and exposes the control-plane surface
// the host runtime's managed-memory API uses.
//
// This plays the role bmv2 plays in the paper's evaluation: a behavioral
// model that runs the *compiled artifact* (the predicated linear program the
// TNA backend produced), not the source semantics.
//
// Since ISSUE 7 the device is multi-program (the ClickINC "INC as a
// service" model): independently compiled programs load side by side as
// *tenants*, each with its own register file, lookup tables, RNG stream,
// and DeviceStats, dispatched by computation id. A p4::AdmissionController
// gates every load so the co-resident aggregate always fits StageLimits.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "p4/admission.hpp"
#include "p4/latency.hpp"
#include "p4/pipeline.hpp"
// Header-only and dependency-free by design, so the sim layer can return
// typed errors without linking netcl_runtime (which sits above netcl_sim).
#include "runtime/error.hpp"
#include "sim/packet.hpp"
#include "sim/registers.hpp"
#include "sim/table.hpp"
#include "support/hashes.hpp"

namespace netcl::sim {

/// Identifies one resident program on a device. The legacy single-program
/// constructor loads as tenant 0.
using TenantId = std::uint32_t;

/// What the kernel decided about a message.
struct ComputeOutcome {
  ActionKind action = ActionKind::Pass;
  std::uint16_t target = 0;  // host / device / multicast-group id
  bool executed = false;     // false: no kernel for the computation (no-op)
  /// Guard-true operations this packet executed across all pipeline stages
  /// (the per-packet slice of DeviceStats::stage_executions) — what an INT
  /// stamp reports as stage occupancy.
  std::uint32_t stage_ops = 0;
};

/// Read/write access totals for one register array.
struct RegisterAccess {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

/// Per-switch observability counters (ISSUE 1). The device fills the
/// execution-side counters; the fabric fills the forwarding-side ones
/// (drops/multicasts/transits) as it applies the kernel's decision. The
/// host runtime reads them over the control plane via
/// runtime::DeviceConnection::stats(). Each tenant additionally keeps its
/// own copy (execution-side counters plus the action outcomes its kernels
/// chose), so co-resident programs are individually observable.
struct DeviceStats {
  std::uint64_t packets_processed = 0;  // packets entering execute()
  std::uint64_t kernels_executed = 0;   // ... that found a kernel
  std::uint64_t no_kernel = 0;          // ... with no kernel here (no-op, §IV)
  std::uint64_t drops_action = 0;       // kernel chose drop()
  std::uint64_t multicasts = 0;         // kernel chose multicast(gid)
  std::uint64_t transits = 0;           // NetCL packets passing through un-asked
  std::uint64_t recirculations = 0;     // packets re-entering this device
  std::uint64_t control_reads = 0;      // managed_read / debug_read
  std::uint64_t control_writes = 0;     // managed_write / lookup updates
  /// Guard-true operations executed per pipeline stage (index = stage as
  /// assigned by the TNA allocator; sized on first use).
  std::vector<std::uint64_t> stage_executions;
};

/// One compiled program, ready to load: everything driver::compile produces
/// that the device needs, including the allocator's per-stage accounting
/// the admission controller charges. An empty `per_stage` loads without
/// admission accounting (legacy single-program path, tests).
struct ProgramArtifact {
  std::string name;  // operator-facing label ("CALC", "cache.ncl")
  std::unique_ptr<ir::Module> module;
  std::vector<p4::KernelProgram> kernels;
  int stages_used = 0;
  std::vector<p4::StageUsage> per_stage;
};

/// Compiles NetCL source into a loadable artifact. The real implementation
/// lives in netcl_driver (which owns the whole pipeline) and is injected
/// into the daemon / DeviceConnection as a callback, because the net and
/// sim layers must not link the driver.
using ProgramCompiler = std::function<runtime::Error(
    const std::string& source, const std::map<std::string, std::uint64_t>& defines,
    std::uint16_t device_id, ProgramArtifact& out)>;

/// A resident tenant as reported to operators (kListKernels, ncl-top).
struct TenantInfo {
  TenantId id = 0;
  std::string name;
  int stages_used = 0;
  std::vector<int> computations;
  /// Worst-stage resource row ("sram=3 tcam=0 salu=2 ...") or
  /// "unaccounted" for admission-exempt loads.
  std::string usage;
  DeviceStats stats;
};

class SwitchDevice {
 public:
  /// Takes ownership of the compiled module plus its linearized kernels and
  /// loads them as tenant 0 (admission-exempt — the legacy single-program
  /// path). `stages_used` comes from the stage allocator and drives the
  /// latency model; pass 0 for an ideal (zero-latency) device.
  SwitchDevice(std::uint16_t device_id, std::unique_ptr<ir::Module> module,
               std::vector<p4::KernelProgram> kernels, int stages_used);

  /// A plain forwarding switch with no NetCL program.
  explicit SwitchDevice(std::uint16_t device_id);

  [[nodiscard]] std::uint16_t device_id() const { return device_id_; }
  /// Max stages over all resident programs (drives the latency model).
  [[nodiscard]] int stages_used() const { return stages_used_; }
  [[nodiscard]] double pipeline_latency_ns() const;
  /// First resident tenant's module (legacy accessor; prefer per-tenant
  /// inspection via tenant_table()).
  [[nodiscard]] const ir::Module* module() const;

  // --- tenant management (ISSUE 7) -----------------------------------------
  /// Loads a compiled program as `tenant`. Fails with kRejected when the
  /// tenant id is taken, a computation id collides with a resident tenant,
  /// --max-tenants is reached, or the admission controller finds the
  /// aggregate over budget (the error message carries the full per-stage
  /// resource report).
  [[nodiscard]] runtime::Error load_program(TenantId tenant, ProgramArtifact artifact);

  /// Unloads a resident tenant, releasing its admission reservation and
  /// destroying its state. Other tenants are untouched.
  [[nodiscard]] runtime::Error unload_program(TenantId tenant);

  /// Replaces a resident tenant's program in place — the sim half of a
  /// hitless swap. Admission re-evaluates with the old reservation
  /// released; on rejection the old program stays resident and running.
  /// The tenant's stats survive (they belong to the observer); its device
  /// state restarts fresh, to be replayed from the host journal.
  [[nodiscard]] runtime::Error swap_program(TenantId tenant, ProgramArtifact artifact);

  [[nodiscard]] bool has_tenant(TenantId tenant) const { return tenants_.count(tenant) != 0; }
  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }
  [[nodiscard]] std::vector<TenantInfo> tenant_table() const;
  /// Execution-side counters of one tenant (nullptr if not resident).
  [[nodiscard]] const DeviceStats* tenant_stats(TenantId tenant) const;
  [[nodiscard]] const p4::AdmissionController& admission() const { return admission_; }

  /// Caps resident tenants (0 = unlimited, the default).
  void set_max_tenants(std::size_t max_tenants) { max_tenants_ = max_tenants; }
  [[nodiscard]] std::size_t max_tenants() const { return max_tenants_; }

  /// Replaces the admission budget; only honored while no tenant is
  /// resident (returns false otherwise) so reservations never desync.
  bool set_stage_limits(p4::StageLimits limits, int base_stages = 1);

  /// The kernel specification for a computation id (nullptr if this device
  /// hosts no kernel for it).
  [[nodiscard]] const KernelSpec* spec_for(int computation) const;
  /// Which tenant serves a computation id (nullptr if none).
  [[nodiscard]] const TenantId* tenant_for(int computation) const;

  /// Executes the kernel for `computation` over decoded argument values
  /// (mutated in place: by-ref writes land here) under the given header.
  ComputeOutcome execute(int computation, ArgValues& args, const NetclHeader& header);

  // --- control plane (host runtime's managed-memory path) -----------------
  /// Resolves `name[indices...]`, transparently following access-based
  /// partitioning renames (cms[0][i] finds cms$0[i]). The name is looked up
  /// across all tenants; a unique match wins, an ambiguous one (two tenants
  /// declaring the same global) fails. Prefix "12:" scopes to tenant 12.
  bool managed_write(const std::string& name, const std::vector<std::uint64_t>& indices,
                     std::uint64_t value);
  bool managed_read(const std::string& name, const std::vector<std::uint64_t>& indices,
                    std::uint64_t& out);
  bool lookup_insert(const std::string& name, std::uint64_t key_lo, std::uint64_t key_hi,
                     std::uint64_t value);
  bool lookup_remove(const std::string& name, std::uint64_t key);

  /// Unrestricted state access for tests and debugging (not part of the
  /// NetCL API surface).
  bool debug_read(const std::string& name, const std::vector<std::uint64_t>& indices,
                  std::uint64_t& out) const;
  void reset_state();

  // --- health / generation (ISSUE 3) ----------------------------------------
  /// Boot counter carried in PONG responses. A restart bumps it, so hosts
  /// can tell "the device I configured" from "a device that lost my state".
  [[nodiscard]] std::uint32_t generation() const { return generation_; }
  void set_generation(std::uint32_t generation) { generation_ = generation; }
  /// Simulates a power-cycle: registers zeroed, lookup tables re-seeded
  /// from their declarations (control-plane inserts are lost, like a real
  /// daemon restart), generation bumped. Stats survive — they belong to
  /// the observer, not the device state.
  void restart();

  // --- statistics -----------------------------------------------------------
  /// Device-wide aggregate (sum over tenants plus forwarding-side counters
  /// the fabric fills).
  DeviceStats stats;
  /// Per-register-array access counters, keyed by the (possibly
  /// partition-renamed) global name, merged across tenants.
  [[nodiscard]] std::map<std::string, RegisterAccess> register_access() const;
  void reset_stats();

 private:
  /// One resident program with fully isolated state.
  struct Tenant {
    std::string name;
    std::unique_ptr<ir::Module> module;
    std::vector<p4::KernelProgram> kernels;
    int stages_used = 0;
    std::vector<p4::StageUsage> per_stage;
    std::unique_ptr<RegisterFile> registers;
    std::unique_ptr<TableSet> tables;
    DeviceStats stats;
    /// Seeded exactly like a single-program device, so a tenant's random
    /// stream — and therefore its outputs — are byte-identical whether it
    /// runs alone or co-resident.
    SplitMix64 rng{0x5EEDBA5E};
    std::unordered_map<const ir::GlobalVar*, RegisterAccess> register_access;
  };

  struct Resolved {
    Tenant* tenant = nullptr;
    ir::GlobalVar* global = nullptr;
    std::vector<std::uint64_t> indices;
  };
  /// Follows `name` or `name$<i0>` partition renames and duplication
  /// across tenants (see managed_write for the scoping rules).
  [[nodiscard]] Resolved resolve(const std::string& name,
                                 const std::vector<std::uint64_t>& indices) const;
  [[nodiscard]] Resolved resolve_in(Tenant& tenant, const std::string& name,
                                    const std::vector<std::uint64_t>& indices) const;
  void attach(TenantId id, Tenant& tenant);
  void detach(TenantId id, Tenant& tenant);
  void refresh_stages();

  std::uint16_t device_id_;
  // std::map: node-based, so Tenant* in by_computation_ stays valid across
  // unrelated load/unload.
  std::map<TenantId, Tenant> tenants_;
  std::unordered_map<int, std::pair<TenantId, const p4::KernelProgram*>> by_computation_;
  p4::AdmissionController admission_;
  std::size_t max_tenants_ = 0;  // 0 = unlimited
  int stages_used_ = 0;
  std::uint32_t generation_ = 1;
  p4::LatencyModel latency_;
};

}  // namespace netcl::sim
