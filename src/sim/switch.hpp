// The simulated PDP switch: executes compiled NetCL pipeline programs
// against live register/table state and exposes the control-plane surface
// the host runtime's managed-memory API uses.
//
// This plays the role bmv2 plays in the paper's evaluation: a behavioral
// model that runs the *compiled artifact* (the predicated linear program the
// TNA backend produced), not the source semantics.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "p4/latency.hpp"
#include "p4/pipeline.hpp"
#include "sim/packet.hpp"
#include "sim/registers.hpp"
#include "sim/table.hpp"
#include "support/hashes.hpp"

namespace netcl::sim {

/// What the kernel decided about a message.
struct ComputeOutcome {
  ActionKind action = ActionKind::Pass;
  std::uint16_t target = 0;  // host / device / multicast-group id
  bool executed = false;     // false: no kernel for the computation (no-op)
  /// Guard-true operations this packet executed across all pipeline stages
  /// (the per-packet slice of DeviceStats::stage_executions) — what an INT
  /// stamp reports as stage occupancy.
  std::uint32_t stage_ops = 0;
};

/// Read/write access totals for one register array.
struct RegisterAccess {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

/// Per-switch observability counters (ISSUE 1). The device fills the
/// execution-side counters; the fabric fills the forwarding-side ones
/// (drops/multicasts/transits) as it applies the kernel's decision. The
/// host runtime reads them over the control plane via
/// runtime::DeviceConnection::stats().
struct DeviceStats {
  std::uint64_t packets_processed = 0;  // packets entering execute()
  std::uint64_t kernels_executed = 0;   // ... that found a kernel
  std::uint64_t no_kernel = 0;          // ... with no kernel here (no-op, §IV)
  std::uint64_t drops_action = 0;       // kernel chose drop()
  std::uint64_t multicasts = 0;         // kernel chose multicast(gid)
  std::uint64_t transits = 0;           // NetCL packets passing through un-asked
  std::uint64_t recirculations = 0;     // packets re-entering this device
  std::uint64_t control_reads = 0;      // managed_read / debug_read
  std::uint64_t control_writes = 0;     // managed_write / lookup updates
  /// Guard-true operations executed per pipeline stage (index = stage as
  /// assigned by the TNA allocator; sized on first use).
  std::vector<std::uint64_t> stage_executions;
};

class SwitchDevice {
 public:
  /// Takes ownership of the compiled module plus its linearized kernels.
  /// `stages_used` comes from the stage allocator and drives the latency
  /// model; pass 0 for an ideal (zero-latency) device.
  SwitchDevice(std::uint16_t device_id, std::unique_ptr<ir::Module> module,
               std::vector<p4::KernelProgram> kernels, int stages_used);

  /// A plain forwarding switch with no NetCL program.
  explicit SwitchDevice(std::uint16_t device_id);

  [[nodiscard]] std::uint16_t device_id() const { return device_id_; }
  [[nodiscard]] int stages_used() const { return stages_used_; }
  [[nodiscard]] double pipeline_latency_ns() const;
  [[nodiscard]] const ir::Module* module() const { return module_.get(); }

  /// The kernel specification for a computation id (nullptr if this device
  /// hosts no kernel for it).
  [[nodiscard]] const KernelSpec* spec_for(int computation) const;

  /// Executes the kernel for `computation` over decoded argument values
  /// (mutated in place: by-ref writes land here) under the given header.
  ComputeOutcome execute(int computation, ArgValues& args, const NetclHeader& header);

  // --- control plane (host runtime's managed-memory path) -----------------
  /// Resolves `name[indices...]`, transparently following access-based
  /// partitioning renames (cms[0][i] finds cms$0[i]).
  bool managed_write(const std::string& name, const std::vector<std::uint64_t>& indices,
                     std::uint64_t value);
  bool managed_read(const std::string& name, const std::vector<std::uint64_t>& indices,
                    std::uint64_t& out);
  bool lookup_insert(const std::string& name, std::uint64_t key_lo, std::uint64_t key_hi,
                     std::uint64_t value);
  bool lookup_remove(const std::string& name, std::uint64_t key);

  /// Unrestricted state access for tests and debugging (not part of the
  /// NetCL API surface).
  bool debug_read(const std::string& name, const std::vector<std::uint64_t>& indices,
                  std::uint64_t& out) const;
  void reset_state();

  // --- health / generation (ISSUE 3) ----------------------------------------
  /// Boot counter carried in PONG responses. A restart bumps it, so hosts
  /// can tell "the device I configured" from "a device that lost my state".
  [[nodiscard]] std::uint32_t generation() const { return generation_; }
  void set_generation(std::uint32_t generation) { generation_ = generation; }
  /// Simulates a power-cycle: registers zeroed, lookup tables re-seeded
  /// from their declarations (control-plane inserts are lost, like a real
  /// daemon restart), generation bumped. Stats survive — they belong to
  /// the observer, not the device state.
  void restart();

  // --- statistics -----------------------------------------------------------
  DeviceStats stats;
  /// Per-register-array access counters, keyed by the (possibly
  /// partition-renamed) global name.
  [[nodiscard]] std::map<std::string, RegisterAccess> register_access() const;
  void reset_stats();

 private:
  struct Resolved {
    ir::GlobalVar* global = nullptr;
    std::vector<std::uint64_t> indices;
  };
  /// Follows `name` or `name$<i0>` partition renames and duplication.
  [[nodiscard]] Resolved resolve(const std::string& name,
                                 const std::vector<std::uint64_t>& indices) const;

  std::uint16_t device_id_;
  std::unique_ptr<ir::Module> module_;
  std::vector<p4::KernelProgram> kernels_;
  std::unordered_map<int, const p4::KernelProgram*> by_computation_;
  std::unique_ptr<RegisterFile> registers_;
  std::unique_ptr<TableSet> tables_;
  int stages_used_ = 0;
  std::uint32_t generation_ = 1;
  p4::LatencyModel latency_;
  SplitMix64 rng_{0x5EEDBA5E};
  std::unordered_map<const ir::GlobalVar*, RegisterAccess> register_access_;
};

}  // namespace netcl::sim
