#include "sim/table.hpp"

#include <algorithm>

namespace netcl::sim {

LookupTable::LookupTable(const ir::GlobalVar& global)
    : global_(&global), entries_(global.entries) {}

MatchResult LookupTable::match(std::uint64_t key) const {
  const std::uint64_t masked = global_->key_type.truncate(key);
  for (const LookupEntry& entry : entries_) {
    const bool matched = global_->lookup_kind == LookupKind::Range
                             ? entry.key_lo <= masked && masked <= entry.key_hi
                             : entry.key_lo == masked;
    if (matched) return {true, global_->value_type.truncate(entry.value)};
  }
  return {false, 0};
}

bool LookupTable::insert(std::uint64_t key_lo, std::uint64_t key_hi, std::uint64_t value) {
  if (!global_->is_managed) return false;
  // Exact-match insert replaces an existing entry for the same key.
  for (LookupEntry& entry : entries_) {
    if (entry.key_lo == key_lo && entry.key_hi == key_hi) {
      entry.value = value;
      return true;
    }
  }
  if (static_cast<std::int64_t>(entries_.size()) >= capacity()) return false;
  entries_.push_back({key_lo, key_hi, value});
  return true;
}

bool LookupTable::remove(std::uint64_t key_lo) {
  if (!global_->is_managed) return false;
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const LookupEntry& e) { return e.key_lo == key_lo; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

TableSet::TableSet(const ir::Module& module) {
  for (const auto& global : module.globals()) {
    if (global->is_lookup) tables_.emplace(global.get(), LookupTable(*global));
  }
}

LookupTable* TableSet::find(const ir::GlobalVar& global) {
  const auto it = tables_.find(&global);
  return it == tables_.end() ? nullptr : &it->second;
}

const LookupTable* TableSet::find(const ir::GlobalVar& global) const {
  const auto it = tables_.find(&global);
  return it == tables_.end() ? nullptr : &it->second;
}

}  // namespace netcl::sim
