// Match-action table state backing _lookup_ globals in the simulator.
//
// Tables are initialized from their declaration's const entries. Managed
// lookup tables additionally accept control-plane inserts/removes (the
// paper's host-side `_managed_ _lookup_` modification path); non-managed
// tables are immutable at runtime, exactly like data-plane P4 MATs.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ir/ir.hpp"

namespace netcl::sim {

struct MatchResult {
  bool hit = false;
  std::uint64_t value = 0;
};

class LookupTable {
 public:
  explicit LookupTable(const ir::GlobalVar& global);

  [[nodiscard]] MatchResult match(std::uint64_t key) const;

  /// Control-plane mutation; fails (returns false) on non-managed tables
  /// or when capacity is exhausted.
  bool insert(std::uint64_t key_lo, std::uint64_t key_hi, std::uint64_t value);
  bool remove(std::uint64_t key_lo);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::int64_t capacity() const { return global_->element_count(); }
  [[nodiscard]] const ir::GlobalVar& global() const { return *global_; }

 private:
  const ir::GlobalVar* global_;
  std::vector<LookupEntry> entries_;
};

class TableSet {
 public:
  explicit TableSet(const ir::Module& module);

  [[nodiscard]] LookupTable* find(const ir::GlobalVar& global);
  [[nodiscard]] const LookupTable* find(const ir::GlobalVar& global) const;

 private:
  std::unordered_map<const ir::GlobalVar*, LookupTable> tables_;
};

}  // namespace netcl::sim
