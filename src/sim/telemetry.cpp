#include "sim/telemetry.hpp"

namespace netcl::sim {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  for (int b = 0; b < 2; ++b) out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

std::uint64_t get(std::span<const std::uint8_t> data, std::size_t pos, int bytes) {
  std::uint64_t v = 0;
  for (int b = 0; b < bytes; ++b) v |= static_cast<std::uint64_t>(data[pos + b]) << (8 * b);
  return v;
}

}  // namespace

bool stamp_hop(TelemetryRecord& record, const TelemetryHop& hop) {
  if (record.hops.size() >= kMaxTelemetryHops) return false;
  record.hops.push_back(hop);
  return true;
}

void append_trailer(std::vector<std::uint8_t>& out, const TelemetryRecord& record) {
  out.push_back(static_cast<std::uint8_t>(record.hops.size()));
  for (const TelemetryHop& hop : record.hops) {
    put_u16(out, hop.device_id);
    put_u32(out, hop.generation);
    put_u64(out, hop.ingress_ns);
    put_u64(out, hop.egress_ns);
    put_u32(out, hop.queue_depth);
    put_u32(out, hop.stage_ops);
  }
}

runtime::Error parse_trailer_e(std::span<const std::uint8_t> data, TelemetryRecord& out) {
  using runtime::Error;
  using runtime::ErrorKind;
  if (data.empty()) return {ErrorKind::kMalformed, "empty telemetry trailer"};
  const std::size_t count = data[0];
  if (count > kMaxTelemetryHops) {
    return {ErrorKind::kMalformed,
            "telemetry hop count " + std::to_string(count) + " exceeds max"};
  }
  // Exactly one trailer: a truncated or oversized tail is a malformed
  // packet, not something to guess about.
  if (data.size() != trailer_bytes(count)) {
    return {ErrorKind::kMalformed,
            "telemetry trailer is " + std::to_string(data.size()) + " bytes, expected " +
                std::to_string(trailer_bytes(count))};
  }
  out.requested = true;
  out.hops.clear();
  out.hops.reserve(count);
  std::size_t pos = 1;
  for (std::size_t i = 0; i < count; ++i) {
    TelemetryHop hop;
    hop.device_id = static_cast<std::uint16_t>(get(data, pos, 2));
    hop.generation = static_cast<std::uint32_t>(get(data, pos + 2, 4));
    hop.ingress_ns = get(data, pos + 6, 8);
    hop.egress_ns = get(data, pos + 14, 8);
    hop.queue_depth = static_cast<std::uint32_t>(get(data, pos + 22, 4));
    hop.stage_ops = static_cast<std::uint32_t>(get(data, pos + 26, 4));
    out.hops.push_back(hop);
    pos += TelemetryHop::kWireBytes;
  }
  return {};
}

bool parse_trailer(std::span<const std::uint8_t> data, TelemetryRecord& out) {
  return parse_trailer_e(data, out).ok();
}

}  // namespace netcl::sim
