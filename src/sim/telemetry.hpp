// In-band telemetry (INT) records carried by NetCL packets (ISSUE 4).
//
// When a host requests telemetry (kFlagTelemetry in the NetCL header),
// every hop — a simulated switch on the fabric clock, or a netcl-swd
// daemon on its wall clock — appends one fixed-layout TelemetryHop to the
// packet before forwarding it. On the wire the hops travel in a trailer
// after the kernel-arg payload (net/wire.cpp); inside the simulator they
// ride the Packet struct directly, so both paths stamp identically.
//
// Default-off invariant: with telemetry unrequested no hop is ever
// appended, the wire bytes are exactly the pre-INT layout, and no clock or
// RNG is touched — seeded simulations stay byte-identical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/error.hpp"

namespace netcl::sim {

/// NetCL header flag bit: the source host asked every hop to stamp the
/// packet with a TelemetryHop.
inline constexpr std::uint8_t kFlagTelemetry = 0x01;

/// One device's stamp. Timestamps are on the *device's* clock (fabric
/// nanoseconds for a simulated switch, daemon-epoch wall nanoseconds for
/// netcl-swd); the host aligns them via obs::align_clocks.
struct TelemetryHop {
  std::uint16_t device_id = 0;
  /// Device boot counter (bumps on restart), so a span can attribute hops
  /// to the exact device incarnation that produced them.
  std::uint32_t generation = 0;
  std::uint64_t ingress_ns = 0;  // packet entered the device
  std::uint64_t egress_ns = 0;   // forwarding decision made / pipeline paid
  /// Device-local queue occupancy at ingress: pending fabric events for a
  /// simulated switch, position within the current receive burst for swd.
  std::uint32_t queue_depth = 0;
  /// Guard-true operations the kernel executed for this packet across all
  /// pipeline stages (0 for transit hops and no-op kernels).
  std::uint32_t stage_ops = 0;

  static constexpr std::size_t kWireBytes = 2 + 4 + 8 + 8 + 4 + 4;

  friend bool operator==(const TelemetryHop&, const TelemetryHop&) = default;
};

/// The per-packet record: requested by the sender, grown by each hop.
struct TelemetryRecord {
  bool requested = false;
  std::vector<TelemetryHop> hops;

  friend bool operator==(const TelemetryRecord&, const TelemetryRecord&) = default;
};

/// Hops beyond this are not stamped (the trailer's count is one byte, and
/// a forwarding loop must not grow packets without bound).
inline constexpr std::size_t kMaxTelemetryHops = 15;

/// Appends a hop, enforcing kMaxTelemetryHops. Returns false (record
/// unchanged) when the packet already carries the maximum.
bool stamp_hop(TelemetryRecord& record, const TelemetryHop& hop);

/// Wire codec for the trailer: u8 hop count, then count fixed-layout hops,
/// all little-endian. append_trailer writes it after whatever `out`
/// already holds; parse_trailer requires `data` to be exactly one trailer
/// (no slack) and rejects counts above kMaxTelemetryHops.
void append_trailer(std::vector<std::uint8_t>& out, const TelemetryRecord& record);
[[nodiscard]] bool parse_trailer(std::span<const std::uint8_t> data, TelemetryRecord& out);

/// Typed variant (ISSUE 8): total over arbitrary bytes, kMalformed with a
/// reason instead of a bare false. parse_trailer wraps this.
[[nodiscard]] runtime::Error parse_trailer_e(std::span<const std::uint8_t> data,
                                             TelemetryRecord& out);

/// Serialized trailer size for a record with `hops` stamps.
[[nodiscard]] constexpr std::size_t trailer_bytes(std::size_t hops) {
  return 1 + hops * TelemetryHop::kWireBytes;
}

}  // namespace netcl::sim
