#include "support/diagnostics.hpp"

#include <sstream>

namespace netcl {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::render(const SourceBuffer* buffer) const {
  std::ostringstream os;
  if (buffer != nullptr && !buffer->name().empty()) os << buffer->name() << ":";
  if (loc.valid()) os << loc.line << ":" << loc.column << ": ";
  os << to_string(severity) << ": " << message;
  if (buffer != nullptr && loc.valid()) {
    const std::string_view line = buffer->line(loc.line);
    if (!line.empty()) {
      os << "\n  " << line << "\n  ";
      for (std::uint32_t i = 1; i < loc.column; ++i) os << ' ';
      os << '^';
    }
  }
  return os.str();
}

void DiagnosticEngine::report(Severity severity, SourceLoc loc, std::string message) {
  if (severity == Severity::Error) ++error_count_;
  diagnostics_.push_back({severity, loc, std::move(message)});
}

bool DiagnosticEngine::contains_error(std::string_view needle) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::Error && d.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::string DiagnosticEngine::render_all(const SourceBuffer* buffer) const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics_) os << d.render(buffer) << "\n";
  return os.str();
}

void DiagnosticEngine::clear() {
  diagnostics_.clear();
  error_count_ = 0;
}

}  // namespace netcl
