// Diagnostic collection for the NetCL compiler.
//
// Compile errors are data, not exceptions: every frontend/IR/backend phase
// reports into a DiagnosticEngine and callers test `has_errors()` between
// phases. This mirrors how a real compiler driver sequences its pipeline.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/source.hpp"

namespace netcl {

enum class Severity { Note, Warning, Error };

[[nodiscard]] std::string_view to_string(Severity s);

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string render(const SourceBuffer* buffer = nullptr) const;
};

class DiagnosticEngine {
 public:
  void report(Severity severity, SourceLoc loc, std::string message);

  void error(SourceLoc loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }
  void note(SourceLoc loc, std::string message) {
    report(Severity::Note, loc, std::move(message));
  }

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] int error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  /// True if any error message contains `needle` (substring match).
  /// Used heavily by tests asserting on specific rejection reasons.
  [[nodiscard]] bool contains_error(std::string_view needle) const;

  /// All diagnostics rendered one per line, with source snippets when a
  /// buffer is provided.
  [[nodiscard]] std::string render_all(const SourceBuffer* buffer = nullptr) const;

  void clear();

 private:
  std::vector<Diagnostic> diagnostics_;
  int error_count_ = 0;
};

}  // namespace netcl
