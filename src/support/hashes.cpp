#include "support/hashes.hpp"

#include <array>

namespace netcl {
namespace {

constexpr std::array<std::uint16_t, 256> make_crc16_table() {
  std::array<std::uint16_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint16_t crc = static_cast<std::uint16_t>(i);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) != 0 ? static_cast<std::uint16_t>((crc >> 1) ^ 0xA001) : static_cast<std::uint16_t>(crc >> 1);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) != 0 ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint16_t, 256> kCrc16Table = make_crc16_table();
const std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace

std::uint16_t crc16(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0;
  for (std::uint8_t byte : data) {
    crc = static_cast<std::uint16_t>((crc >> 8) ^ kCrc16Table[(crc ^ byte) & 0xFF]);
  }
  return crc;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc = (crc >> 8) ^ kCrc32Table[(crc ^ byte) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint16_t xor16(std::span<const std::uint8_t> data) {
  std::uint16_t acc = 0;
  for (std::size_t i = 0; i + 1 < data.size(); i += 2) {
    acc ^= static_cast<std::uint16_t>(data[i] | (data[i + 1] << 8));
  }
  if ((data.size() & 1) != 0) acc ^= data.back();
  return acc;
}

namespace {
std::array<std::uint8_t, 8> le_bytes(std::uint64_t value) {
  std::array<std::uint8_t, 8> bytes{};
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
  return bytes;
}
}  // namespace

std::uint16_t crc16_u64(std::uint64_t value, unsigned byte_width) {
  const auto bytes = le_bytes(value);
  return crc16(std::span(bytes).first(byte_width));
}

std::uint32_t crc32_u64(std::uint64_t value, unsigned byte_width) {
  const auto bytes = le_bytes(value);
  return crc32(std::span(bytes).first(byte_width));
}

std::uint16_t xor16_u64(std::uint64_t value, unsigned byte_width) {
  const auto bytes = le_bytes(value);
  return xor16(std::span(bytes).first(byte_width));
}

}  // namespace netcl
