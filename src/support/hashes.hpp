// Hash functions exposed as NetCL device-library intrinsics (ncl::crc16,
// ncl::crc32, ncl::xor16, ncl::identity) and reused by the switch simulator
// (SALU/hash-engine units) and the host runtime. Keeping one implementation
// guarantees the compiler's constant folding, the simulator, and host-side
// prediction all agree on hash values.
#pragma once

#include <cstdint>
#include <span>

namespace netcl {

/// CRC-16/ARC (poly 0x8005, reflected), the default Tofino CRC16.
[[nodiscard]] std::uint16_t crc16(std::span<const std::uint8_t> data);

/// CRC-32 (poly 0x04C11DB7, reflected), the default Tofino CRC32.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// XOR of consecutive 16-bit little-endian words (odd tail byte XORed in).
[[nodiscard]] std::uint16_t xor16(std::span<const std::uint8_t> data);

/// Convenience overloads hashing the little-endian bytes of one word, which
/// is how scalar kernel arguments are fed to hash engines.
[[nodiscard]] std::uint16_t crc16_u64(std::uint64_t value, unsigned byte_width = 8);
[[nodiscard]] std::uint32_t crc32_u64(std::uint64_t value, unsigned byte_width = 8);
[[nodiscard]] std::uint16_t xor16_u64(std::uint64_t value, unsigned byte_width = 8);

/// Deterministic 64-bit mixer used wherever the library needs cheap
/// pseudo-randomness (workload generators, loss injection). SplitMix64.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

}  // namespace netcl
