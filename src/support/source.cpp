#include "support/source.hpp"

#include <algorithm>
#include <cctype>

namespace netcl {

SourceBuffer::SourceBuffer(std::string name, std::string text)
    : name_(std::move(name)), text_(std::move(text)) {
  line_offsets_.push_back(0);
  for (std::size_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '\n' && i + 1 < text_.size()) {
      line_offsets_.push_back(i + 1);
    }
  }
}

std::string_view SourceBuffer::line(std::uint32_t line_no) const {
  if (line_no == 0 || line_no > line_offsets_.size()) return {};
  const std::size_t begin = line_offsets_[line_no - 1];
  std::size_t end = text_.find('\n', begin);
  if (end == std::string::npos) end = text_.size();
  return std::string_view(text_).substr(begin, end - begin);
}

int count_loc(std::string_view text) {
  int loc = 0;
  bool in_block_comment = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view raw = text.substr(pos, eol - pos);

    // Strip comments from this line, tracking block-comment state.
    std::string stripped;
    stripped.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (in_block_comment) {
        if (i + 1 < raw.size() && raw[i] == '*' && raw[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      if (i + 1 < raw.size() && raw[i] == '/' && raw[i + 1] == '/') break;
      if (i + 1 < raw.size() && raw[i] == '/' && raw[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      stripped.push_back(raw[i]);
    }

    const bool has_code = std::any_of(stripped.begin(), stripped.end(), [](unsigned char c) {
      return !std::isspace(c) && c != '{' && c != '}' && c != ';';
    });
    if (has_code) ++loc;

    if (eol == text.size()) break;
    pos = eol + 1;
  }
  return loc;
}

}  // namespace netcl
