// Source buffers and locations for NetCL-C compilation.
//
// A SourceBuffer owns the text of one translation unit (a .ncl file or an
// embedded string). SourceLoc is a lightweight (line, column) pair used by
// diagnostics; it intentionally does not reference the buffer so that AST
// nodes stay trivially copyable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace netcl {

/// A position inside a source buffer. Lines and columns are 1-based;
/// line == 0 means "unknown location" (e.g. compiler-synthesized code).
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const { return line != 0; }
  friend bool operator==(SourceLoc, SourceLoc) = default;
};

/// Owns the text of one NetCL-C translation unit and provides line access
/// for diagnostics rendering.
class SourceBuffer {
 public:
  SourceBuffer() = default;
  SourceBuffer(std::string name, std::string text);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::string_view text() const { return text_; }

  /// Returns the text of a 1-based line without its trailing newline.
  /// Returns an empty view for out-of-range lines.
  [[nodiscard]] std::string_view line(std::uint32_t line_no) const;

  [[nodiscard]] std::uint32_t line_count() const {
    return static_cast<std::uint32_t>(line_offsets_.size());
  }

 private:
  std::string name_;
  std::string text_;
  std::vector<std::size_t> line_offsets_;  // offset of each line start
};

/// Counts non-blank, non-comment lines the way the paper's Table III does:
/// `//` line comments and `/* */` block comments are stripped first, then
/// lines containing only whitespace or punctuation-free braces are dropped.
[[nodiscard]] int count_loc(std::string_view text);

}  // namespace netcl
