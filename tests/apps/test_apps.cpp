#include <gtest/gtest.h>

#include "apps/agg.hpp"
#include "apps/cache.hpp"
#include "apps/calc.hpp"
#include "apps/handwritten.hpp"
#include "apps/paxos.hpp"
#include "apps/sources.hpp"
#include "driver/compiler.hpp"

namespace netcl::apps {
namespace {

TEST(AppSources, AllCompileForTna) {
  struct Case {
    AppSource app;
    int device;
  };
  const Case cases[] = {
      {agg_source(), 1},
      {cache_source(), 1},
      {paxos_source(), kPaxosLeaderDevice},
      {paxos_source(), kPaxosAcceptors[0]},
      {paxos_source(), kPaxosLearnerDevice},
      {calc_source(), 1},
  };
  for (const Case& c : cases) {
    driver::CompileOptions options;
    options.device_id = c.device;
    options.defines = c.app.defines;
    const driver::CompileResult result = driver::compile_netcl(c.app.source, options);
    EXPECT_TRUE(result.ok) << c.app.name << " (device " << c.device << "):\n"
                           << result.errors;
    if (result.ok) {
      EXPECT_LE(result.allocation.stages_used, 12)
          << c.app.name << " must fit a Tofino pipe";
    }
  }
}

TEST(AppSources, AllCompileForV1Model) {
  for (const AppSource& app : {agg_source(), cache_source(), calc_source()}) {
    driver::CompileOptions options;
    options.device_id = 1;
    options.target = passes::Target::V1Model;
    options.defines = app.defines;
    const driver::CompileResult result = driver::compile_netcl(app.source, options);
    EXPECT_TRUE(result.ok) << app.name << ":\n" << result.errors;
  }
}

TEST(AppSources, NetclLocIsSmall) {
  // Table III's headline: NetCL needs O(10) lines where P4 needs O(100).
  EXPECT_LT(count_loc(agg_source().source), 60);
  EXPECT_LT(count_loc(cache_source().source), 110);
  EXPECT_LT(count_loc(paxos_source().source), 90);
  EXPECT_LT(count_loc(calc_source().source), 30);
}

// --- AGG ----------------------------------------------------------------------

TEST(Agg, TwoWorkersAggregateCorrectly) {
  AggConfig config;
  config.num_workers = 2;
  config.chunks = 32;
  config.slot_size = 8;
  config.num_slots = 16;
  const AggResult result = run_agg(config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.correct);
  EXPECT_GT(result.ate_per_sec_per_worker, 0.0);
  EXPECT_EQ(result.retransmissions, 0u);
}

TEST(Agg, SixWorkers) {
  AggConfig config;
  config.num_workers = 6;
  config.chunks = 24;
  config.slot_size = 8;
  const AggResult result = run_agg(config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.correct);
}

TEST(Agg, PerWorkerThroughputFlatAcrossWorkers) {
  // Fig 14 (left): adding workers does not degrade per-worker throughput.
  double t2 = 0;
  double t6 = 0;
  {
    AggConfig config;
    config.num_workers = 2;
    config.chunks = 64;
    config.slot_size = 8;
    t2 = run_agg(config).ate_per_sec_per_worker;
  }
  {
    AggConfig config;
    config.num_workers = 6;
    config.chunks = 64;
    config.slot_size = 8;
    t6 = run_agg(config).ate_per_sec_per_worker;
  }
  ASSERT_GT(t2, 0);
  ASSERT_GT(t6, 0);
  EXPECT_GT(t6 / t2, 0.85);
  EXPECT_LT(t6 / t2, 1.15);
}

TEST(Agg, SurvivesPacketLoss) {
  AggConfig config;
  config.num_workers = 2;
  config.chunks = 24;
  config.slot_size = 4;
  config.loss = 0.05;
  config.retransmit_ns = 100000.0;
  const AggResult result = run_agg(config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.correct);
  EXPECT_GT(result.packets_lost, 0u);
  EXPECT_GT(result.retransmissions, 0u);
}

TEST(Agg, SurvivesLossDuplicationAndReordering) {
  // The RetransmitWindow's duplicate-suppression (acknowledge_slot is a
  // no-op for a retired chunk) must hold up when the fabric injects all
  // three fault kinds at once.
  AggConfig config;
  config.num_workers = 2;
  config.chunks = 24;
  config.slot_size = 4;
  config.loss = 0.05;
  config.duplicate_probability = 0.05;
  config.reorder_probability = 0.05;
  config.retransmit_ns = 100000.0;
  config.seed = 11;
  const AggResult result = run_agg(config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.correct);
  EXPECT_GT(result.packets_lost, 0u);
  EXPECT_GT(result.packets_duplicated, 0u);
  EXPECT_GT(result.retransmissions, 0u);
}

TEST(Agg, SelfHealsAcrossDeviceCrashAndRestart) {
  // The switch dies mid-run and comes back empty (registers zeroed,
  // generation bumped). In-flight aggregation state is lost; SwitchML
  // retransmission must rebuild every affected slot and still produce
  // correct aggregates for all workers.
  AggConfig config;
  config.num_workers = 2;
  config.chunks = 24;
  config.slot_size = 4;
  config.retransmit_ns = 100000.0;
  config.crash_at_ns = 3000.0;
  config.restart_at_ns = 250000.0;
  const AggResult result = run_agg(config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.correct);
  EXPECT_GT(result.retransmissions, 0u);
}

TEST(Agg, SeededRunsAreDeterministicWithFaultHooksOff) {
  // The fault-injection hooks must consume no randomness when disabled:
  // two identically-seeded lossy runs stay byte-identical (Fig. 14's
  // numbers cannot drift because ISSUE 3 landed).
  AggConfig config;
  config.num_workers = 2;
  config.chunks = 24;
  config.slot_size = 4;
  config.loss = 0.05;
  config.retransmit_ns = 100000.0;
  config.seed = 23;
  const AggResult first = run_agg(config);
  const AggResult second = run_agg(config);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.sim_seconds, second.sim_seconds);
  EXPECT_EQ(first.retransmissions, second.retransmissions);
  EXPECT_EQ(first.packets_lost, second.packets_lost);
}

// --- CACHE ---------------------------------------------------------------------

TEST(Cache, HitsAreFasterThanMisses) {
  CacheConfig config;
  config.queries = 128;
  config.cached_keys = 32;
  config.total_keys = 64;
  config.val_words = 8;
  const CacheResult result = run_cache(config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NEAR(result.hit_rate, 0.5, 0.15);
  EXPECT_GT(result.mean_miss_response_ns, 2 * result.mean_hit_response_ns);
  EXPECT_EQ(result.device_hits, static_cast<std::uint64_t>(128 * result.hit_rate));
}

TEST(Cache, AllHitAndAllMissExtremes) {
  CacheConfig all_hit;
  all_hit.queries = 64;
  all_hit.cached_keys = 64;
  all_hit.total_keys = 64;
  all_hit.val_words = 8;
  const CacheResult hit_result = run_cache(all_hit);
  ASSERT_TRUE(hit_result.ok) << hit_result.error;
  EXPECT_DOUBLE_EQ(hit_result.hit_rate, 1.0);

  CacheConfig all_miss = all_hit;
  all_miss.cached_keys = 0;
  const CacheResult miss_result = run_cache(all_miss);
  ASSERT_TRUE(miss_result.ok) << miss_result.error;
  EXPECT_DOUBLE_EQ(miss_result.hit_rate, 0.0);
  // Fig 14 (right) shape: all-miss response time is roughly 3x all-hit.
  const double ratio = miss_result.mean_response_ns / hit_result.mean_response_ns;
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 6.0);
}

TEST(Cache, HotKeysReportedOnce) {
  CacheConfig config;
  config.queries = 400;
  config.cached_keys = 0;  // everything misses
  config.total_keys = 2;   // two scorching keys
  config.hot_threshold = 50;
  config.val_words = 4;
  const CacheResult result = run_cache(config);
  ASSERT_TRUE(result.ok) << result.error;
  // Each hot key passes the threshold once and is then suppressed by the
  // bloom filter.
  EXPECT_EQ(result.hot_reports, 2);
}

TEST(Cache, PutUpdatesAndDelInvalidates) {
  // Drive the kernel directly for PUT/DEL semantics.
  AppSource app = cache_source(16, 4);
  driver::CompileOptions options;
  options.device_id = 1;
  options.defines = app.defines;
  driver::CompileResult compiled = driver::compile_netcl(app.source, options);
  ASSERT_TRUE(compiled.ok) << compiled.errors;
  const KernelSpec spec = compiled.specs.at(1);
  auto device = driver::make_device(std::move(compiled), 1);

  // Controller installs key 7 at line 3.
  ASSERT_TRUE(device->lookup_insert("KeyIndex", 7, 7, 3));
  ASSERT_TRUE(device->lookup_insert("WordMask", 7, 7, 0xF));
  for (int w = 0; w < 4; ++w) {
    ASSERT_TRUE(
        device->managed_write("Values", {static_cast<std::uint64_t>(w), 3}, 100 + w));
  }
  ASSERT_TRUE(device->managed_write("Valid", {3}, 1));

  auto get = [&](std::uint64_t key) {
    sim::ArgValues args = sim::make_args(spec);
    args[0][0] = kGetReq;
    args[1][0] = key;
    const sim::ComputeOutcome outcome = device->execute(1, args, {});
    return std::make_pair(outcome, args);
  };

  auto [outcome1, args1] = get(7);
  EXPECT_EQ(outcome1.action, ActionKind::Reflect);
  EXPECT_EQ(args1[2][0], 100u);
  EXPECT_EQ(args1[3][0], 1u);  // hit

  // PUT through the data plane: write-back updates the line in place.
  sim::ArgValues put = sim::make_args(spec);
  put[0][0] = kPutReq;
  put[1][0] = 7;
  for (int w = 0; w < 4; ++w) put[2][static_cast<std::size_t>(w)] = 200 + w;
  EXPECT_EQ(device->execute(1, put, {}).action, ActionKind::Pass);

  auto [outcome2, args2] = get(7);
  EXPECT_EQ(outcome2.action, ActionKind::Reflect);
  EXPECT_EQ(args2[2][0], 200u);

  // DEL invalidates: the next GET misses (passes to the server).
  sim::ArgValues del = sim::make_args(spec);
  del[0][0] = kDelReq;
  del[1][0] = 7;
  EXPECT_EQ(device->execute(1, del, {}).action, ActionKind::Pass);
  auto [outcome3, args3] = get(7);
  EXPECT_EQ(outcome3.action, ActionKind::Pass);
  EXPECT_EQ(args3[3][0], 0u);
}

// --- PAXOS ----------------------------------------------------------------------

TEST(Paxos, DeliversAllInstancesExactlyOnce) {
  PaxosConfig config;
  config.requests = 32;
  const PaxosResult result = run_paxos(config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.delivered, 32);
  EXPECT_EQ(result.duplicate_deliveries, 0);
  EXPECT_TRUE(result.values_intact);
  EXPECT_TRUE(result.instances_sequential);
}

TEST(Paxos, AllThreeRolesFitTofino) {
  PaxosConfig config;
  config.requests = 4;
  const PaxosResult result = run_paxos(config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_LE(result.leader_stages, 12);
  EXPECT_LE(result.acceptor_stages, 12);
  EXPECT_LE(result.learner_stages, 12);
}

TEST(Paxos, MajorityOfOneAlsoWorks) {
  PaxosConfig config;
  config.requests = 8;
  config.num_acceptors = 1;
  config.majority = 1;
  const PaxosResult result = run_paxos(config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.delivered, 8);
  EXPECT_EQ(result.duplicate_deliveries, 0);
}

// --- CALC ----------------------------------------------------------------------

TEST(Calc, AllOperationsCorrect) {
  CalcConfig config;
  config.operations = 64;
  const CalcResult result = run_calc(config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.answered, 0);
  EXPECT_EQ(result.answered, result.correct);
  EXPECT_GT(result.dropped_unknown, 0);
  EXPECT_EQ(result.answered + result.dropped_unknown, 64);
}

// --- handwritten baselines -------------------------------------------------------

TEST(Handwritten, CacheBaselineSavesStages) {
  AppSource app = cache_source();
  driver::CompileOptions options;
  options.device_id = 1;
  options.defines = app.defines;
  const driver::CompileResult compiled = driver::compile_netcl(app.source, options);
  ASSERT_TRUE(compiled.ok) << compiled.errors;
  const HandwrittenModel hand = handwritten_baseline("CACHE", compiled);
  EXPECT_EQ(hand.stages,
            compiled.allocation.stages_used - paper_reference().cache_extra_stages_generated);
  EXPECT_LT(hand.latency_ns, p4::LatencyModel{}.worst_case_ns(compiled.allocation.stages_used));
}

TEST(Handwritten, AggGeneratedAvoidsTcam) {
  AppSource app = agg_source(2, 16, 8);
  driver::CompileOptions options;
  options.device_id = 1;
  options.defines = app.defines;
  const driver::CompileResult compiled = driver::compile_netcl(app.source, options);
  ASSERT_TRUE(compiled.ok) << compiled.errors;
  EXPECT_EQ(compiled.allocation.total.tcam, 0);  // the paper's observation
  const HandwrittenModel hand = handwritten_baseline("AGG", compiled);
  EXPECT_GT(hand.total.tcam, 0);
}

TEST(Handwritten, PhvBaselineIsSmaller) {
  AppSource app = calc_source();
  driver::CompileOptions options;
  options.device_id = 1;
  options.defines = app.defines;
  const driver::CompileResult compiled = driver::compile_netcl(app.source, options);
  ASSERT_TRUE(compiled.ok) << compiled.errors;
  const HandwrittenModel hand = handwritten_baseline("CALC", compiled);
  const p4::StageLimits limits;
  EXPECT_LT(hand.worst_phv_pct, compiled.phv.occupancy_pct(limits));
}

}  // namespace
}  // namespace netcl::apps
