#include <gtest/gtest.h>

#include "frontend/lexer.hpp"

namespace netcl {
namespace {

std::vector<Token> lex(const std::string& text, DiagnosticEngine& diags, DefineMap defines = {}) {
  SourceBuffer buffer("test.ncl", text);
  Lexer lexer(buffer, diags, std::move(defines));
  return lexer.lex_all();
}

TEST(Lexer, Keywords) {
  DiagnosticEngine diags;
  const auto tokens = lex("_kernel _net_ _managed_ _lookup_ _at _spec if else for return", diags);
  ASSERT_EQ(tokens.size(), 11u);
  EXPECT_EQ(tokens[0].kind, TokenKind::KwKernel);
  EXPECT_EQ(tokens[1].kind, TokenKind::KwNet);
  EXPECT_EQ(tokens[2].kind, TokenKind::KwManaged);
  EXPECT_EQ(tokens[3].kind, TokenKind::KwLookup);
  EXPECT_EQ(tokens[4].kind, TokenKind::KwAt);
  EXPECT_EQ(tokens[5].kind, TokenKind::KwSpec);
  EXPECT_EQ(tokens[6].kind, TokenKind::KwIf);
  EXPECT_EQ(tokens[7].kind, TokenKind::KwElse);
  EXPECT_EQ(tokens[8].kind, TokenKind::KwFor);
  EXPECT_EQ(tokens[9].kind, TokenKind::KwReturn);
  EXPECT_EQ(tokens[10].kind, TokenKind::End);
  EXPECT_FALSE(diags.has_errors());
}

TEST(Lexer, IntegerLiterals) {
  DiagnosticEngine diags;
  const auto tokens = lex("42 0x2A 0b101010 7u 9UL", diags);
  EXPECT_EQ(tokens[0].value, 42u);
  EXPECT_EQ(tokens[1].value, 42u);
  EXPECT_EQ(tokens[2].value, 42u);
  EXPECT_EQ(tokens[3].value, 7u);
  EXPECT_EQ(tokens[4].value, 9u);
  EXPECT_FALSE(diags.has_errors());
}

TEST(Lexer, CharLiterals) {
  DiagnosticEngine diags;
  const auto tokens = lex(R"('a' '\n' '\0')", diags);
  EXPECT_EQ(tokens[0].value, static_cast<std::uint64_t>('a'));
  EXPECT_EQ(tokens[1].value, static_cast<std::uint64_t>('\n'));
  EXPECT_EQ(tokens[2].value, 0u);
  EXPECT_FALSE(diags.has_errors());
}

TEST(Lexer, MultiCharOperators) {
  DiagnosticEngine diags;
  const auto tokens = lex(":: << >> <= >= == != && || += <<= ++", diags);
  EXPECT_EQ(tokens[0].kind, TokenKind::ColonColon);
  EXPECT_EQ(tokens[1].kind, TokenKind::LessLess);
  EXPECT_EQ(tokens[2].kind, TokenKind::GreaterGreater);
  EXPECT_EQ(tokens[3].kind, TokenKind::LessEqual);
  EXPECT_EQ(tokens[4].kind, TokenKind::GreaterEqual);
  EXPECT_EQ(tokens[5].kind, TokenKind::EqualEqual);
  EXPECT_EQ(tokens[6].kind, TokenKind::BangEqual);
  EXPECT_EQ(tokens[7].kind, TokenKind::AmpAmp);
  EXPECT_EQ(tokens[8].kind, TokenKind::PipePipe);
  EXPECT_EQ(tokens[9].kind, TokenKind::PlusEqual);
  EXPECT_EQ(tokens[10].kind, TokenKind::LessLessEqual);
  EXPECT_EQ(tokens[11].kind, TokenKind::PlusPlus);
}

TEST(Lexer, CommentsAreSkipped) {
  DiagnosticEngine diags;
  const auto tokens = lex("a // comment\nb /* multi\nline */ c", diags);
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(Lexer, TracksLocations) {
  DiagnosticEngine diags;
  const auto tokens = lex("a\n  b", diags);
  EXPECT_EQ(tokens[0].loc.line, 1u);
  EXPECT_EQ(tokens[0].loc.column, 1u);
  EXPECT_EQ(tokens[1].loc.line, 2u);
  EXPECT_EQ(tokens[1].loc.column, 3u);
}

TEST(Lexer, DefineSubstitution) {
  DiagnosticEngine diags;
  const auto tokens = lex("#define SLOT_SIZE 32\nSLOT_SIZE", diags);
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::IntLiteral);
  EXPECT_EQ(tokens[0].value, 32u);
  EXPECT_FALSE(diags.has_errors());
}

TEST(Lexer, ExternalDefines) {
  DiagnosticEngine diags;
  const auto tokens = lex("N", diags, {{"N", 8}});
  EXPECT_EQ(tokens[0].kind, TokenKind::IntLiteral);
  EXPECT_EQ(tokens[0].value, 8u);
}

TEST(Lexer, UnsupportedDirectiveErrors) {
  DiagnosticEngine diags;
  (void)lex("#include <x>\nint", diags);
  EXPECT_TRUE(diags.contains_error("unsupported preprocessor directive"));
}

TEST(Lexer, UnexpectedCharacterErrors) {
  DiagnosticEngine diags;
  (void)lex("a @ b", diags);
  EXPECT_TRUE(diags.contains_error("unexpected character"));
}

TEST(Lexer, UnterminatedBlockComment) {
  DiagnosticEngine diags;
  (void)lex("a /* never closed", diags);
  EXPECT_TRUE(diags.contains_error("unterminated block comment"));
}

}  // namespace
}  // namespace netcl
