#include <gtest/gtest.h>

#include "frontend/parser.hpp"

namespace netcl {
namespace {

Program parse(const std::string& text, DiagnosticEngine& diags, DefineMap defines = {}) {
  SourceBuffer buffer("test.ncl", text);
  return parse_netcl(buffer, diags, std::move(defines));
}

// The paper's Figure 4: the complete in-network cache device code.
constexpr const char* kFigure4 = R"(
#define CMS_HASHES 3
#define THRESH 128
#define GET_REQ 1

_managed_ unsigned cms[CMS_HASHES][65536];

_net_ void sketch(unsigned k, unsigned &hot) {
  unsigned c[CMS_HASHES];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k)], 1);
  for (auto i = 1; i < CMS_HASHES; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  hot = c[0] > THRESH ? c[0] : 0;
}

_net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42}, {2,42},
                                                      {3,42}, {4,42}};

_kernel(1) _at(1) void query(char op, unsigned k, unsigned &v,
                             char &hit, unsigned &hot) {
  if (op == GET_REQ) {
    hit = ncl::lookup(cache, k, v);
    return hit ? ncl::reflect() : sketch(k, hot);
  }
}
)";

TEST(Parser, Figure4Parses) {
  DiagnosticEngine diags;
  const Program program = parse(kFigure4, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  ASSERT_EQ(program.functions.size(), 2u);
  ASSERT_EQ(program.globals.size(), 2u);

  const FunctionDecl* sketch = program.find_function("sketch");
  ASSERT_NE(sketch, nullptr);
  EXPECT_FALSE(sketch->is_kernel);
  ASSERT_EQ(sketch->params.size(), 2u);
  EXPECT_FALSE(sketch->params[0].by_ref);
  EXPECT_TRUE(sketch->params[1].by_ref);

  const FunctionDecl* query = program.find_function("query");
  ASSERT_NE(query, nullptr);
  EXPECT_TRUE(query->is_kernel);
  EXPECT_EQ(query->computation, 1);
  ASSERT_EQ(query->locations.size(), 1u);
  EXPECT_EQ(query->locations[0], 1);
  EXPECT_EQ(query->params.size(), 5u);

  const GlobalDecl* cms = program.find_global("cms");
  ASSERT_NE(cms, nullptr);
  EXPECT_TRUE(cms->is_managed);
  ASSERT_EQ(cms->dims.size(), 2u);
  EXPECT_EQ(cms->dims[0], 3);
  EXPECT_EQ(cms->dims[1], 65536);

  const GlobalDecl* cache = program.find_global("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_TRUE(cache->is_lookup);
  EXPECT_EQ(cache->lookup_kind, LookupKind::Exact);
  ASSERT_EQ(cache->entries.size(), 4u);
  EXPECT_EQ(cache->entries[0].key_lo, 1u);
  EXPECT_EQ(cache->entries[0].value, 42u);
  EXPECT_EQ(cache->dims[0], 4);  // sized from the initializer
}

TEST(Parser, KernelSpecsFromDeclarators) {
  DiagnosticEngine diags;
  const Program program = parse(R"(
    _kernel(1) void a(int x[3]) {}
    _kernel(2) void b(int x[4]) {}
    _kernel(3) void c(int _spec(4) *x) {}
    _kernel(4) void d(int x, int y[2], int *z) {}
  )",
                                diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  EXPECT_EQ(program.find_function("a")->params[0].spec, 3);
  EXPECT_EQ(program.find_function("b")->params[0].spec, 4);
  EXPECT_EQ(program.find_function("c")->params[0].spec, 4);
  const FunctionDecl* d = program.find_function("d");
  EXPECT_EQ(d->params[0].spec, 1);
  EXPECT_EQ(d->params[1].spec, 2);
  EXPECT_EQ(d->params[2].spec, 1);
  EXPECT_TRUE(d->params[2].is_pointer);
}

TEST(Parser, MultiLocationAt) {
  DiagnosticEngine diags;
  const Program program = parse("_net_ _at(1,2,7) int m[42];", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  const GlobalDecl* m = program.find_global("m");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->locations, (std::vector<std::uint16_t>{1, 2, 7}));
}

TEST(Parser, RangeLookupInitializer) {
  DiagnosticEngine diags;
  const Program program =
      parse("_net_ _lookup_ ncl::rv<int,int> b[] = { {{1,10},1}, {{11,20},2} };", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  const GlobalDecl* b = program.find_global("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->lookup_kind, LookupKind::Range);
  ASSERT_EQ(b->entries.size(), 2u);
  EXPECT_EQ(b->entries[1].key_lo, 11u);
  EXPECT_EQ(b->entries[1].key_hi, 20u);
  EXPECT_EQ(b->entries[1].value, 2u);
}

TEST(Parser, SetLookupInitializer) {
  DiagnosticEngine diags;
  const Program program = parse("_net_ _lookup_ unsigned a[] = {1,2,3};", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  const GlobalDecl* a = program.find_global("a");
  EXPECT_EQ(a->lookup_kind, LookupKind::Set);
  EXPECT_EQ(a->entries.size(), 3u);
}

TEST(Parser, CommaSeparatedGlobals) {
  DiagnosticEngine diags;
  const Program program = parse("_net_ int m1[42], m2[42];", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  EXPECT_NE(program.find_global("m1"), nullptr);
  EXPECT_NE(program.find_global("m2"), nullptr);
}

TEST(Parser, GotoRejected) {
  DiagnosticEngine diags;
  (void)parse("_kernel(1) void k(int x) { goto out; }", diags);
  EXPECT_TRUE(diags.contains_error("goto is not allowed"));
}

TEST(Parser, WhileRejected) {
  DiagnosticEngine diags;
  (void)parse("_kernel(1) void k(int x) { while (x) x = 1; }", diags);
  EXPECT_TRUE(diags.contains_error("while loops are not supported"));
}

TEST(Parser, PointerDereferenceRejected) {
  DiagnosticEngine diags;
  (void)parse("_kernel(1) void k(int *x) { int y = *x; }", diags);
  EXPECT_TRUE(diags.contains_error("pointer dereference is not allowed"));
}

TEST(Parser, FunctionNeedsKernelOrNet) {
  DiagnosticEngine diags;
  (void)parse("void f(int x) {}", diags);
  EXPECT_TRUE(diags.contains_error("must be declared _kernel(c) or _net_"));
}

TEST(Parser, GlobalNeedsNetOrManaged) {
  DiagnosticEngine diags;
  (void)parse("int m[4];", diags);
  EXPECT_TRUE(diags.contains_error("must be _net_ or _managed_"));
}

TEST(Parser, NonLookupInitializerRejected) {
  DiagnosticEngine diags;
  (void)parse("_net_ int m[4] = {1,2,3,4};", diags);
  EXPECT_TRUE(diags.contains_error("zero-initialized"));
}

TEST(Parser, TernaryPrecedence) {
  DiagnosticEngine diags;
  const Program program =
      parse("_kernel(1) void k(unsigned x, unsigned &y) { y = x > 2 ? x + 1 : 0; }", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  const auto& body = static_cast<const BlockStmt&>(*program.functions[0]->body);
  ASSERT_EQ(body.body.size(), 1u);
  const auto& assign = static_cast<const AssignStmt&>(*body.body[0]);
  EXPECT_EQ(assign.value->kind, ExprKind::Ternary);
}

TEST(Parser, ForLoopStructure) {
  DiagnosticEngine diags;
  const Program program =
      parse("_kernel(1) void k(int n) { for (auto i = 0; i < 4; ++i) { n = n + i; } }", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  const auto& body = static_cast<const BlockStmt&>(*program.functions[0]->body);
  const auto& loop = static_cast<const ForStmt&>(*body.body[0]);
  EXPECT_NE(loop.init, nullptr);
  EXPECT_NE(loop.cond, nullptr);
  EXPECT_NE(loop.step, nullptr);
  EXPECT_NE(loop.body, nullptr);
}

TEST(Parser, BuiltinAccess) {
  DiagnosticEngine diags;
  const Program program =
      parse("_kernel(1) void k(unsigned &x) { x = device.id; x = msg.src; }", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  const auto& body = static_cast<const BlockStmt&>(*program.functions[0]->body);
  const auto& assign = static_cast<const AssignStmt&>(*body.body[0]);
  EXPECT_EQ(assign.value->kind, ExprKind::Builtin);
}

TEST(Parser, CompoundAssignAndIncrement) {
  DiagnosticEngine diags;
  const Program program = parse(R"(
    _kernel(1) void k(unsigned &x) {
      x += 2;
      x <<= 1;
      x++;
      --x;
    }
  )",
                                diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  const auto& body = static_cast<const BlockStmt&>(*program.functions[0]->body);
  ASSERT_EQ(body.body.size(), 4u);
  for (const auto& stmt : body.body) {
    ASSERT_EQ(stmt->kind, StmtKind::Assign);
    EXPECT_TRUE(static_cast<const AssignStmt&>(*stmt).compound);
  }
}

TEST(Parser, RecoversAfterBadDeclaration) {
  DiagnosticEngine diags;
  const Program program = parse(R"(
    _net_ frobnicate m[4];
    _net_ int ok[4];
  )",
                                diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(program.find_global("ok"), nullptr);
}

}  // namespace
}  // namespace netcl
