#include <gtest/gtest.h>

#include "frontend/sema.hpp"

namespace netcl {
namespace {

Program analyze(const std::string& text, DiagnosticEngine& diags, DefineMap defines = {}) {
  SourceBuffer buffer("test.ncl", text);
  return analyze_netcl(buffer, diags, std::move(defines));
}

TEST(Sema, Figure4Passes) {
  DiagnosticEngine diags;
  (void)analyze(R"(
#define CMS_HASHES 3
#define THRESH 128
#define GET_REQ 1
_managed_ unsigned cms[CMS_HASHES][65536];
_net_ void sketch(unsigned k, unsigned &hot) {
  unsigned c[CMS_HASHES];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k)], 1);
  for (auto i = 1; i < CMS_HASHES; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  hot = c[0] > THRESH ? c[0] : 0;
}
_net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42},{2,42},{3,42},{4,42}};
_kernel(1) _at(1) void query(char op, unsigned k, unsigned &v, char &hit, unsigned &hot) {
  if (op == GET_REQ) {
    hit = ncl::lookup(cache, k, v);
    return hit ? ncl::reflect() : sketch(k, hot);
  }
}
)",
                diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
}

// Paper §V-C placement examples.
TEST(Sema, PlacementValidityEq1) {
  DiagnosticEngine diags;
  (void)analyze(R"(
    _net_ _at(1,2) int m[42];
    _kernel(1) _at(1,2) void a(int x) { m[0] = 1; }
    _kernel(1) void b(int x) {}
  )",
                diags);
  // b is invalid: computation 1 has multiple kernels so all must be placed.
  EXPECT_TRUE(diags.contains_error("must be explicitly placed"));
}

TEST(Sema, PlacementOverlapRejected) {
  DiagnosticEngine diags;
  (void)analyze(R"(
    _kernel(1) _at(1,2) void a(int x) {}
    _kernel(1) _at(2,3) void b(int x) {}
  )",
                diags);
  EXPECT_TRUE(diags.contains_error("both placed at device 2"));
}

TEST(Sema, DisjointPlacementAccepted) {
  DiagnosticEngine diags;
  (void)analyze(R"(
    _kernel(1) _at(1) void a(int x) {}
    _kernel(1) _at(2,3) void b(int x) {}
  )",
                diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
}

TEST(Sema, ReferenceValidityEq2) {
  DiagnosticEngine diags;
  (void)analyze(R"(
    _net_ _at(1,2) int m[42];
    _kernel(2) _at(3) void c(int x) { m[0] = 42; }
  )",
                diags);
  EXPECT_TRUE(diags.contains_error("not placed at device 3"));
}

TEST(Sema, LocationlessMemoryUsableAnywhere) {
  DiagnosticEngine diags;
  (void)analyze(R"(
    _net_ int m[42];
    _kernel(1) _at(7) void k(int x) { m[0] = x; }
  )",
                diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
}

TEST(Sema, LocationlessKernelCannotUsePlacedMemory) {
  DiagnosticEngine diags;
  (void)analyze(R"(
    _net_ _at(1) int m[42];
    _kernel(1) void k(int x) { m[0] = x; }
  )",
                diags);
  EXPECT_TRUE(diags.contains_error("location-less and may be compiled anywhere"));
}

TEST(Sema, MismatchedKernelSpecsRejected) {
  DiagnosticEngine diags;
  (void)analyze(R"(
    _kernel(1) _at(1) void a(int x[3]) {}
    _kernel(1) _at(2) void b(int x[4]) {}
  )",
                diags);
  EXPECT_TRUE(diags.contains_error("specification"));
}

TEST(Sema, MatchingSpecsViaSpecAttribute) {
  DiagnosticEngine diags;
  (void)analyze(R"(
    _kernel(1) _at(1) void b(int x[4]) {}
    _kernel(1) _at(2) void c(int _spec(4) *x) {}
  )",
                diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
}

TEST(Sema, RecursionRejected) {
  DiagnosticEngine diags;
  (void)analyze(R"(
    _net_ void f(unsigned x) { f(x); }
    _kernel(1) void k(unsigned x) { f(x); }
  )",
                diags);
  EXPECT_TRUE(diags.contains_error("recursion"));
}

TEST(Sema, MutualRecursionRejected) {
  // Mutual recursion requires forward references, which NetCL-C does not
  // have; a self-loop through the only visible name still triggers.
  DiagnosticEngine diags;
  (void)analyze("_net_ void g(unsigned x) { g(x); }", diags);
  EXPECT_TRUE(diags.contains_error("recursion"));
}

TEST(Sema, ActionOutsideReturnRejected) {
  DiagnosticEngine diags;
  (void)analyze("_kernel(1) void k(int x) { ncl::drop(); }", diags);
  EXPECT_TRUE(diags.contains_error("actions may only appear in return statements"));
}

TEST(Sema, ActionInNetFunctionRejected) {
  DiagnosticEngine diags;
  (void)analyze("_net_ void f(int x) { return ncl::drop(); }", diags);
  EXPECT_TRUE(diags.contains_error("actions may only be used in kernels"));
}

TEST(Sema, KernelReturnValueMustBeAction) {
  DiagnosticEngine diags;
  (void)analyze("_kernel(1) void k(int x) { return x; }", diags);
  EXPECT_TRUE(diags.contains_error("must exit with an action"));
}

TEST(Sema, LookupMemoryNotWritableFromDevice) {
  DiagnosticEngine diags;
  (void)analyze(R"(
    _net_ _lookup_ ncl::kv<int,int> t[] = {{1,2}};
    _kernel(1) void k(int x) { t[0] = 3; }
  )",
                diags);
  EXPECT_TRUE(diags.contains_error("lookup memory cannot be written"));
}

TEST(Sema, LookupRequiresLookupArray) {
  DiagnosticEngine diags;
  (void)analyze(R"(
    _net_ int t[4];
    _kernel(1) void k(int x, char &hit) { hit = ncl::lookup(t, x); }
  )",
                diags);
  EXPECT_TRUE(diags.contains_error("requires a _lookup_ array"));
}

TEST(Sema, AtomicRequiresGlobal) {
  DiagnosticEngine diags;
  (void)analyze("_kernel(1) void k(int x) { int y = ncl::atomic_add(&x, 1); }", diags);
  EXPECT_TRUE(diags.contains_error("atomic operations require a global memory operand"));
}

TEST(Sema, AtomicOnLookupRejected) {
  DiagnosticEngine diags;
  (void)analyze(R"(
    _net_ _lookup_ int t[] = {1,2};
    _kernel(1) void k(int x) { int y = ncl::atomic_add(&t[0], 1); }
  )",
                diags);
  EXPECT_TRUE(diags.contains_error("cannot target _lookup_ memory"));
}

TEST(Sema, UndeclaredIdentifier) {
  DiagnosticEngine diags;
  (void)analyze("_kernel(1) void k(int x) { x = nope; }", diags);
  EXPECT_TRUE(diags.contains_error("undeclared identifier 'nope'"));
}

TEST(Sema, UnknownDeviceFunction) {
  DiagnosticEngine diags;
  (void)analyze("_kernel(1) void k(int x) { x = ncl::frobnicate(x); }", diags);
  EXPECT_TRUE(diags.contains_error("unknown function"));
}

TEST(Sema, KernelsCannotBeCalled) {
  DiagnosticEngine diags;
  (void)analyze(R"(
    _kernel(1) _at(1) void a(int x) {}
    _kernel(2) _at(1) void b(int x) { a(x); }
  )",
                diags);
  EXPECT_TRUE(diags.contains_error("kernels cannot be called directly"));
}

TEST(Sema, ScalarArgWithSpecRejected) {
  DiagnosticEngine diags;
  (void)analyze("_kernel(1) void k(int _spec(4) x) {}", diags);
  EXPECT_TRUE(diags.contains_error("scalar kernel arguments always have a specification of 1"));
}

TEST(Sema, AutoRequiresInitializer) {
  DiagnosticEngine diags;
  (void)analyze("_kernel(1) void k(int x) { auto y; }", diags);
  EXPECT_TRUE(diags.contains_error("requires an initializer"));
}

TEST(Sema, DuplicateLocalRejected) {
  DiagnosticEngine diags;
  (void)analyze("_kernel(1) void k(int x) { int y = 1; int y = 2; }", diags);
  EXPECT_TRUE(diags.contains_error("redeclaration of 'y'"));
}

TEST(Sema, ShadowingInNestedScopeAllowed) {
  DiagnosticEngine diags;
  (void)analyze("_kernel(1) void k(int x) { int y = 1; if (x) { int y = 2; y = 3; } }", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
}

TEST(Sema, DeviceFnResolution) {
  std::string target;
  auto info = resolve_device_fn("ncl::atomic_cond_add_new", &target);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->op, DeviceOp::AtomicRMW);
  EXPECT_EQ(info->atomic_op, AtomicOpKind::Add);
  EXPECT_TRUE(info->atomic_cond);
  EXPECT_TRUE(info->atomic_new);

  info = resolve_device_fn("lookup", &target);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->op, DeviceOp::Lookup);

  info = resolve_device_fn("ncl::tna::crc64", &target);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(target, "tna");

  info = resolve_device_fn("ncl::v1::csum16r", &target);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(target, "v1");

  EXPECT_FALSE(resolve_device_fn("ncl::bogus", &target).has_value());
  EXPECT_FALSE(resolve_device_fn("ncl::atomic_bogus", &target).has_value());
}

TEST(Sema, KernelSpecLayout) {
  DiagnosticEngine diags;
  const Program program = analyze(
      "_kernel(4) void d(int x, int y[2], int *z) {}", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  const KernelSpec spec = make_kernel_spec(*program.find_function("d"));
  EXPECT_EQ(spec.to_string(), "[1,2,1][i32,i32,i32]");
  EXPECT_EQ(spec.byte_size(), 16);
}

// Figure 7: the full SwitchML-style AllReduce kernel.
TEST(Sema, Figure7AllReducePasses) {
  DiagnosticEngine diags;
  (void)analyze(R"(
#define NUM_SLOTS 2048
#define SLOT_SIZE 4
#define NUM_WORKERS 8
_net_ uint16_t Bitmap[2][NUM_SLOTS];
_net_ uint32_t Agg[SLOT_SIZE][NUM_SLOTS * 2];
_net_ uint8_t Count[NUM_SLOTS * 2];

_kernel(1) void allreduce(uint8_t ver, uint16_t bmp_idx,
                          uint16_t agg_idx, uint16_t mask,
                          uint32_t _spec(SLOT_SIZE) *v) {
  uint16_t bitmap;
  if (ver == 0) {
    bitmap = ncl::atomic_or(&Bitmap[0][bmp_idx], mask);
    ncl::atomic_and(&Bitmap[1][bmp_idx], ~mask);
  } else {
    ncl::atomic_and(&Bitmap[0][bmp_idx], ~mask);
    bitmap = ncl::atomic_or(&Bitmap[1][bmp_idx], mask);
  }

  if (bitmap == 0) {
    for (auto i = 0; i < SLOT_SIZE; ++i)
      Agg[i][agg_idx] = v[i];
    Count[agg_idx] = NUM_WORKERS - 1;
  } else {
    auto seen = bitmap & mask;
    for (auto i = 0; i < SLOT_SIZE; ++i)
      v[i] = ncl::atomic_cond_add_new(Agg[i][agg_idx], !seen, v[i]);

    auto cnt = ncl::atomic_cond_dec(&Count[agg_idx], !seen);
    if (cnt == 0)
      return ncl::reflect();
    if (cnt == 1)
      return ncl::multicast(42);
  }
  return ncl::drop();
}
)",
                diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
}

// Expression arithmetic with NUM_SLOTS * 2 in a dimension needs constant
// folding of dimension expressions, which the grammar restricts to literal
// products; verify the multiply parse path.
TEST(Sema, CommonTypePromotions) {
  EXPECT_EQ(common_type(kU8, kU8).bits, 32);     // both promote to int
  EXPECT_TRUE(common_type(kU8, kU8).is_signed);  // int
  EXPECT_EQ(common_type(kU32, kI32).bits, 32);
  EXPECT_FALSE(common_type(kU32, kI32).is_signed);
  EXPECT_EQ(common_type(kU64, kI32).bits, 64);
  EXPECT_FALSE(common_type(kU64, kI32).is_signed);
}

}  // namespace
}  // namespace netcl
