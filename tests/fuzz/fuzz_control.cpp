// Fuzz target: the control-plane parsers, both directions.
//
// Server side: the input is fed to SwdServer::handle_control as one
// already-deframed request payload (what a connected attacker fully
// controls after the frame header). The dispatcher must always answer —
// one response whose status byte is kControlOk or kControlError — and
// never crash, whatever the bytes. The frame-header classifier is run
// over the same input too (kNeedMore / kFrame / kMalformed are the only
// outcomes, and an accepted length never exceeds kMaxControlFrame).
//
// Client side: the input is treated as a hostile daemon's response body
// and pushed through decode_stats, so a compromised device cannot crash
// the host runtime either.
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/control.hpp"
#include "net/swd_server.hpp"
#include "net/wire.hpp"
#include "runtime/error.hpp"
#include "sim/switch.hpp"

namespace {

// One daemon for the whole run (binding sockets per input would exhaust
// fds); no compiler injected, so kLoadKernel exercises its refusal path.
netcl::net::SwdServer& server() {
  static auto* instance = [] {
    auto device = std::make_unique<netcl::sim::SwitchDevice>(1);
    return new netcl::net::SwdServer(std::move(device), netcl::net::SwdOptions{});
  }();
  return *instance;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> input{data, size};

  std::uint32_t length = 0;
  netcl::runtime::Error error;
  switch (netcl::net::parse_frame_header(input, length, error)) {
    case netcl::net::FrameParse::kNeedMore:
      if (size >= netcl::net::kControlFrameHeaderBytes) __builtin_trap();
      break;
    case netcl::net::FrameParse::kFrame:
      if (length > netcl::net::kMaxControlFrame) __builtin_trap();
      break;
    case netcl::net::FrameParse::kMalformed:
      if (error.kind != netcl::runtime::ErrorKind::kMalformed) __builtin_trap();
      break;
  }

  const std::vector<std::uint8_t> response = server().handle_control(input);
  if (response.empty()) __builtin_trap();
  if (response[0] != netcl::net::kControlOk && response[0] != netcl::net::kControlError) {
    __builtin_trap();
  }

  netcl::net::ByteReader reader(input);
  netcl::sim::DeviceStats stats;
  (void)netcl::net::decode_stats(reader, stats);
  return 0;
}
