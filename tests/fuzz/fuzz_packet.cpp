// Fuzz target: the UDP data-plane datagram parser (net/wire.hpp).
//
// Invariants checked on every input, arbitrary bytes included:
//   1. deserialize_packet_e never crashes, overreads, or throws — it
//      either accepts or returns a typed kMalformed error;
//   2. any accepted datagram reserializes byte-identically (the parser
//      is exact: no slack is tolerated, so parse∘serialize is the
//      identity on the accepted set).
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/wire.hpp"
#include "runtime/error.hpp"
#include "sim/packet.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  netcl::sim::Packet packet;
  const netcl::runtime::Error error = netcl::net::deserialize_packet_e({data, size}, packet);
  if (!error.ok()) {
    // Rejections must be typed: the daemon's perimeter counters key off
    // kMalformed, and an untyped failure would mean a path we missed.
    if (error.kind != netcl::runtime::ErrorKind::kMalformed) __builtin_trap();
    if (error.message.empty()) __builtin_trap();
    return 0;
  }
  std::vector<std::uint8_t> wire;
  netcl::net::serialize_packet(packet, wire);
  if (wire.size() != size || !std::equal(wire.begin(), wire.end(), data)) __builtin_trap();
  return 0;
}
