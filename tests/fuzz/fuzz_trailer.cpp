// Fuzz target: the INT telemetry trailer codec (sim/telemetry.hpp).
//
// Invariants: parse_trailer_e is total (accept or typed kMalformed,
// never UB), and an accepted trailer round-trips byte-identically
// through append_trailer — the codec both hop-stamping paths share.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/error.hpp"
#include "sim/telemetry.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  netcl::sim::TelemetryRecord record;
  const netcl::runtime::Error error = netcl::sim::parse_trailer_e({data, size}, record);
  if (!error.ok()) {
    if (error.kind != netcl::runtime::ErrorKind::kMalformed) __builtin_trap();
    if (error.message.empty()) __builtin_trap();
    return 0;
  }
  if (!record.requested) __builtin_trap();
  if (record.hops.size() > netcl::sim::kMaxTelemetryHops) __builtin_trap();
  std::vector<std::uint8_t> wire;
  netcl::sim::append_trailer(wire, record);
  if (wire.size() != size || !std::equal(wire.begin(), wire.end(), data)) __builtin_trap();
  return 0;
}
