// Replay driver used when the toolchain has no libFuzzer (GCC): runs
// every file argument (directories recurse one level, as libFuzzer does
// with corpus dirs) through LLVMFuzzerTestOneInput exactly once. The
// harness invariants still fire — any __builtin_trap aborts with a
// nonzero exit — there is just no coverage-guided mutation.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

std::size_t replay_file(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "fuzz: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(file),
                                  std::istreambuf_iterator<char>()};
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;  // ignore libFuzzer flags
    const std::filesystem::path path(arg);
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) replayed += replay_file(entry.path());
      }
    } else {
      replayed += replay_file(path);
    }
  }
  std::printf("fuzz: replayed %zu inputs (standalone driver, no mutation)\n", replayed);
  return 0;
}
