// Shared helpers for IR-level tests: front-end + lowering in one call.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "frontend/sema.hpp"
#include "ir/lower_ast.hpp"

namespace netcl::ir::test {

struct Lowered {
  netcl::Program program;
  std::unique_ptr<Module> module;
  DiagnosticEngine diags;
};

/// Parses, analyzes, and lowers `source` for `device_id`. Fails the current
/// test on unexpected frontend errors unless `expect_errors` is set.
inline std::unique_ptr<Lowered> lower(const std::string& source, int device_id = 1,
                                      bool expect_errors = false, DefineMap defines = {}) {
  auto result = std::make_unique<Lowered>();
  SourceBuffer buffer("test.ncl", source);
  result->program = analyze_netcl(buffer, result->diags, std::move(defines));
  if (result->diags.has_errors()) {
    if (!expect_errors) {
      ADD_FAILURE() << "frontend errors:\n" << result->diags.render_all(&buffer);
    }
    return result;
  }
  LowerOptions options;
  options.device_id = device_id;
  result->module = lower_program(result->program, options, result->diags);
  if (result->diags.has_errors() && !expect_errors) {
    ADD_FAILURE() << "lowering errors:\n" << result->diags.render_all(&buffer);
  }
  return result;
}

}  // namespace netcl::ir::test
