#include <gtest/gtest.h>

#include "ir/dominators.hpp"
#include "ir_test_util.hpp"

namespace netcl::ir {
namespace {

using test::lower;

TEST(Dominators, DiamondShape) {
  auto r = lower(R"(
    _kernel(1) void k(unsigned x, unsigned &y) {
      unsigned t;
      if (x > 10) { t = 1; } else { t = 2; }
      y = t;
    }
  )");
  Function* fn = r->module->find_function("k");
  fn->recompute_preds();
  DominatorTree dom(*fn);

  const auto& blocks = fn->blocks();
  ASSERT_EQ(blocks.size(), 4u);
  BasicBlock* entry = fn->entry();
  BasicBlock* then_block = entry->successors()[0];
  BasicBlock* else_block = entry->successors()[1];
  BasicBlock* merge = then_block->successors()[0];

  EXPECT_EQ(dom.idom(entry), nullptr);
  EXPECT_EQ(dom.idom(then_block), entry);
  EXPECT_EQ(dom.idom(else_block), entry);
  EXPECT_EQ(dom.idom(merge), entry);

  EXPECT_TRUE(dom.dominates(entry, merge));
  EXPECT_TRUE(dom.dominates(entry, entry));
  EXPECT_FALSE(dom.dominates(then_block, merge));
  EXPECT_FALSE(dom.dominates(then_block, else_block));

  EXPECT_EQ(dom.common_dominator(then_block, else_block), entry);
  EXPECT_EQ(dom.common_dominator(then_block, merge), entry);
  EXPECT_EQ(dom.common_dominator(merge, merge), merge);
}

TEST(Dominators, InstructionLevel) {
  auto r = lower("_kernel(1) void k(unsigned x, unsigned &y) { y = x + 1; y = y + 2; }");
  Function* fn = r->module->find_function("k");
  fn->recompute_preds();
  DominatorTree dom(*fn);

  std::vector<Instruction*> bins;
  for (const auto& inst : fn->entry()->instructions()) {
    if (inst->op() == Opcode::Bin) bins.push_back(inst.get());
  }
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_TRUE(dom.dominates(bins[0], bins[1]));
  EXPECT_FALSE(dom.dominates(bins[1], bins[0]));
}

TEST(Dominators, NestedIf) {
  auto r = lower(R"(
    _kernel(1) void k(unsigned x, unsigned &y) {
      unsigned t = 0;
      if (x > 10) {
        if (x > 20) { t = 1; }
        else { t = 2; }
      }
      y = t;
    }
  )");
  Function* fn = r->module->find_function("k");
  fn->recompute_preds();
  DominatorTree dom(*fn);
  BasicBlock* entry = fn->entry();
  BasicBlock* outer_then = entry->successors()[0];
  for (const auto& block : fn->blocks()) {
    EXPECT_TRUE(dom.dominates(entry, block.get()));
  }
  // The inner blocks are dominated by the outer then-block.
  for (BasicBlock* inner : outer_then->successors()) {
    EXPECT_TRUE(dom.dominates(outer_then, inner));
    EXPECT_FALSE(dom.dominates(inner, outer_then));
  }
}

}  // namespace
}  // namespace netcl::ir
