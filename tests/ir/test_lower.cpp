#include <gtest/gtest.h>

#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "ir_test_util.hpp"

namespace netcl::ir {
namespace {

using test::lower;

int count_ops(const Function& fn, Opcode op) {
  int count = 0;
  for (const auto& block : fn.blocks()) {
    for (const auto& inst : block->instructions()) {
      if (inst->op() == op) ++count;
    }
  }
  return count;
}

TEST(Lower, SimpleKernel) {
  auto r = lower("_kernel(1) void k(unsigned x, unsigned &y) { y = x + 1; }");
  ASSERT_NE(r->module, nullptr);
  Function* fn = r->module->find_function("k");
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(fn->is_kernel());
  EXPECT_EQ(fn->computation(), 1);
  ASSERT_EQ(fn->arguments().size(), 2u);
  EXPECT_TRUE(verify(*fn).empty()) << print(*fn);
  // y is by-ref and modified: expect a StoreMsg before the implicit pass.
  EXPECT_EQ(count_ops(*fn, Opcode::StoreMsg), 1);
  EXPECT_EQ(count_ops(*fn, Opcode::RetAction), 1);
}

TEST(Lower, UnmodifiedByRefArgNotStored) {
  auto r = lower("_kernel(1) void k(unsigned x, unsigned &y) { x = y; }");
  Function* fn = r->module->find_function("k");
  EXPECT_EQ(count_ops(*fn, Opcode::StoreMsg), 0);
}

TEST(Lower, DeviceIdMaterialized) {
  auto r = lower("_kernel(1) void k(unsigned &y) { y = device.id; }", /*device_id=*/7);
  Function* fn = r->module->find_function("k");
  // No MsgMeta / no instruction producing device.id: it is a constant.
  EXPECT_EQ(count_ops(*fn, Opcode::MsgMeta), 0);
  const std::string text = print(*fn);
  EXPECT_NE(text.find("7:u32"), std::string::npos) << text;
}

TEST(Lower, MsgMetaFields) {
  auto r = lower("_kernel(1) void k(unsigned &y) { y = msg.src + msg.to; }");
  Function* fn = r->module->find_function("k");
  EXPECT_EQ(count_ops(*fn, Opcode::MsgMeta), 2);
  EXPECT_TRUE(verify(*fn).empty()) << print(*fn);
}

TEST(Lower, IfElseCreatesPhi) {
  auto r = lower(R"(
    _kernel(1) void k(unsigned x, unsigned &y) {
      unsigned t;
      if (x > 10) { t = 1; } else { t = 2; }
      y = t;
    }
  )");
  Function* fn = r->module->find_function("k");
  EXPECT_TRUE(verify(*fn).empty()) << print(*fn);
  EXPECT_EQ(count_ops(*fn, Opcode::Phi), 1);
  EXPECT_EQ(fn->blocks().size(), 4u);  // entry, then, else, merge
}

TEST(Lower, FullUnrolling) {
  auto r = lower(R"(
    _net_ unsigned m[8];
    _kernel(1) void k(unsigned x) {
      for (auto i = 0; i < 8; ++i)
        m[i] = x;
    }
  )");
  Function* fn = r->module->find_function("k");
  EXPECT_TRUE(verify(*fn).empty()) << print(*fn);
  // 8 iterations -> 8 StoreGlobal with constant indices.
  EXPECT_EQ(count_ops(*fn, Opcode::StoreGlobal), 8);
  EXPECT_EQ(fn->blocks().size(), 1u);  // no control flow survives unrolling
}

TEST(Lower, UnrollWithStepAndBound) {
  auto r = lower(R"(
    _net_ unsigned m[16];
    _kernel(1) void k(unsigned x) {
      for (int i = 14; i >= 2; i -= 4)
        m[i] = x;
    }
  )");
  Function* fn = r->module->find_function("k");
  EXPECT_EQ(count_ops(*fn, Opcode::StoreGlobal), 4);  // i = 14, 10, 6, 2
}

TEST(Lower, NonConstantBoundRejected) {
  auto r = lower(R"(
    _net_ unsigned m[8];
    _kernel(1) void k(unsigned n) {
      for (auto i = 0; i < n; ++i) m[i] = 1;
    }
  )",
                 1, /*expect_errors=*/true);
  EXPECT_TRUE(r->diags.contains_error("compile-time constants"));
}

TEST(Lower, RunawayLoopRejected) {
  auto r = lower(R"(
    _net_ unsigned m[8];
    _kernel(1) void k(unsigned x) {
      for (auto i = 0; i < 100000; ++i) m[0] = x;
    }
  )",
                 1, /*expect_errors=*/true);
  EXPECT_TRUE(r->diags.contains_error("does not fully unroll"));
}

TEST(Lower, InductionVariableWriteRejected) {
  auto r = lower(R"(
    _kernel(1) void k(unsigned x) {
      for (auto i = 0; i < 4; ++i) { i = 2; }
    }
  )",
                 1, /*expect_errors=*/true);
  EXPECT_TRUE(r->diags.contains_error("induction variables may not be modified"));
}

TEST(Lower, NetFunctionInlined) {
  auto r = lower(R"(
    _net_ void helper(unsigned a, unsigned &out) { out = a * 2; }
    _kernel(1) void k(unsigned x, unsigned &y) { helper(x, y); }
  )");
  Function* fn = r->module->find_function("k");
  EXPECT_TRUE(verify(*fn).empty()) << print(*fn);
  // No call instruction exists; the multiply is inline.
  EXPECT_EQ(count_ops(*fn, Opcode::Bin), 1);
  // Only the kernel is emitted.
  EXPECT_EQ(r->module->functions().size(), 1u);
}

TEST(Lower, NetFunctionEarlyReturn) {
  auto r = lower(R"(
    _net_ void clamp(unsigned a, unsigned &out) {
      if (a > 100) { out = 100; return; }
      out = a;
    }
    _kernel(1) void k(unsigned x, unsigned &y) { clamp(x, y); y = y + 1; }
  )");
  Function* fn = r->module->find_function("k");
  EXPECT_TRUE(verify(*fn).empty()) << print(*fn);
}

TEST(Lower, LocationFiltering) {
  const char* source = R"(
    _net_ _at(1) unsigned m1[4];
    _net_ _at(2) unsigned m2[4];
    _kernel(1) _at(1) void k1(unsigned x) { m1[0] = x; }
    _kernel(2) _at(2) void k2(unsigned x) { m2[0] = x; }
  )";
  auto r1 = lower(source, 1);
  EXPECT_NE(r1->module->find_function("k1"), nullptr);
  EXPECT_EQ(r1->module->find_function("k2"), nullptr);
  EXPECT_NE(r1->module->find_global("m1"), nullptr);
  EXPECT_EQ(r1->module->find_global("m2"), nullptr);

  auto r2 = lower(source, 2);
  EXPECT_EQ(r2->module->find_function("k1"), nullptr);
  EXPECT_NE(r2->module->find_function("k2"), nullptr);
}

TEST(Lower, ActionTernaryBecomesControlFlow) {
  auto r = lower(R"(
    _kernel(1) void k(unsigned x) {
      return x > 4 ? ncl::reflect() : ncl::drop();
    }
  )");
  Function* fn = r->module->find_function("k");
  EXPECT_TRUE(verify(*fn).empty()) << print(*fn);
  EXPECT_EQ(count_ops(*fn, Opcode::RetAction), 2);
  bool saw_reflect = false;
  bool saw_drop = false;
  for (const auto& block : fn->blocks()) {
    for (const auto& inst : block->instructions()) {
      if (inst->op() == Opcode::RetAction) {
        saw_reflect |= inst->action == ActionKind::Reflect;
        saw_drop |= inst->action == ActionKind::Drop;
      }
    }
  }
  EXPECT_TRUE(saw_reflect);
  EXPECT_TRUE(saw_drop);
}

TEST(Lower, LookupWithValueOutput) {
  auto r = lower(R"(
    _net_ _lookup_ ncl::kv<unsigned, unsigned> t[] = {{1,10},{2,20}};
    _kernel(1) void k(unsigned key, unsigned &v, char &hit) {
      hit = ncl::lookup(t, key, v);
      return hit ? ncl::reflect() : ncl::pass();
    }
  )");
  Function* fn = r->module->find_function("k");
  EXPECT_TRUE(verify(*fn).empty()) << print(*fn);
  EXPECT_EQ(count_ops(*fn, Opcode::Lookup), 1);
  EXPECT_EQ(count_ops(*fn, Opcode::LookupValue), 1);
}

TEST(Lower, AtomicShapes) {
  auto r = lower(R"(
    _net_ unsigned c[16];
    _net_ unsigned s;
    _kernel(1) void k(unsigned i, unsigned x, unsigned &out) {
      out = ncl::atomic_add(&c[i], x);
      out = ncl::atomic_cond_add_new(c[i], x > 0, x);
      ncl::atomic_inc(&s);
    }
  )");
  Function* fn = r->module->find_function("k");
  EXPECT_TRUE(verify(*fn).empty()) << print(*fn);
  EXPECT_EQ(count_ops(*fn, Opcode::AtomicRMW), 3);
  int cond_count = 0;
  int new_count = 0;
  for (const auto& block : fn->blocks()) {
    for (const auto& inst : block->instructions()) {
      if (inst->op() == Opcode::AtomicRMW) {
        if (inst->atomic_cond) ++cond_count;
        if (inst->atomic_new) ++new_count;
      }
    }
  }
  EXPECT_EQ(cond_count, 1);
  EXPECT_EQ(new_count, 1);
}

TEST(Lower, ConstIndexOutOfBoundsRejected) {
  auto r = lower(R"(
    _net_ unsigned m[4];
    _kernel(1) void k(unsigned x) { m[7] = x; }
  )",
                 1, /*expect_errors=*/true);
  EXPECT_TRUE(r->diags.contains_error("out of bounds"));
}

TEST(Lower, LookupMemoryDirectIndexRejected) {
  auto r = lower(R"(
    _net_ _lookup_ unsigned t[] = {1,2,3};
    _kernel(1) void k(unsigned x, unsigned &y) { y = t[0]; }
  )",
                 1, /*expect_errors=*/true);
  EXPECT_TRUE(r->diags.contains_error("ncl::lookup"));
}

// The paper's Figure 7 AllReduce kernel, end to end through lowering.
TEST(Lower, Figure7AllReduce) {
  auto r = lower(R"(
#define NUM_SLOTS 64
#define SLOT_SIZE 4
#define NUM_WORKERS 8
_net_ uint16_t Bitmap[2][NUM_SLOTS];
_net_ uint32_t Agg[SLOT_SIZE][NUM_SLOTS * 2];
_net_ uint8_t Count[NUM_SLOTS * 2];

_kernel(1) void allreduce(uint8_t ver, uint16_t bmp_idx, uint16_t agg_idx,
                          uint16_t mask, uint32_t _spec(SLOT_SIZE) *v) {
  uint16_t bitmap;
  if (ver == 0) {
    bitmap = ncl::atomic_or(&Bitmap[0][bmp_idx], mask);
    ncl::atomic_and(&Bitmap[1][bmp_idx], ~mask);
  } else {
    ncl::atomic_and(&Bitmap[0][bmp_idx], ~mask);
    bitmap = ncl::atomic_or(&Bitmap[1][bmp_idx], mask);
  }
  if (bitmap == 0) {
    for (auto i = 0; i < SLOT_SIZE; ++i)
      Agg[i][agg_idx] = v[i];
    Count[agg_idx] = NUM_WORKERS - 1;
  } else {
    auto seen = bitmap & mask;
    for (auto i = 0; i < SLOT_SIZE; ++i)
      v[i] = ncl::atomic_cond_add_new(Agg[i][agg_idx], !seen, v[i]);
    auto cnt = ncl::atomic_cond_dec(&Count[agg_idx], !seen);
    if (cnt == 0)
      return ncl::reflect();
    if (cnt == 1)
      return ncl::multicast(42);
  }
  return ncl::drop();
}
)");
  Function* fn = r->module->find_function("allreduce");
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(verify(*fn).empty()) << print(*fn);
  // 2 bitmap RMWs per branch + SLOT_SIZE aggregation RMWs + count dec.
  EXPECT_EQ(count_ops(*fn, Opcode::AtomicRMW), 4 + 4 + 1);
  EXPECT_EQ(count_ops(*fn, Opcode::StoreGlobal), 5);  // 4 Agg writes + Count
  EXPECT_EQ(count_ops(*fn, Opcode::RetAction), 3);    // reflect, multicast, drop
}

TEST(Lower, VerifierCatchesBrokenPhi) {
  auto r = lower(R"(
    _kernel(1) void k(unsigned x, unsigned &y) {
      unsigned t;
      if (x > 10) { t = 1; } else { t = 2; }
      y = t;
    }
  )");
  Function* fn = r->module->find_function("k");
  // Sabotage: drop one phi incoming.
  for (const auto& block : fn->blocks()) {
    for (const auto& inst : block->instructions()) {
      if (inst->op() == Opcode::Phi) {
        inst->phi_blocks.pop_back();
      }
    }
  }
  EXPECT_FALSE(verify(*fn).empty());
}

TEST(Lower, PrinterRoundTripMentionsEverything) {
  auto r = lower(R"(
    _net_ unsigned m[4];
    _kernel(3) void k(unsigned x, unsigned &y) {
      y = ncl::atomic_sadd_new(&m[x & 3], 1);
      return ncl::reflect_long();
    }
  )");
  const std::string text = print(*r->module);
  EXPECT_NE(text.find("kernel @k computation 3"), std::string::npos) << text;
  EXPECT_NE(text.find("global @m"), std::string::npos);
  EXPECT_NE(text.find("atomicrmw.sadd_new"), std::string::npos);
  EXPECT_NE(text.find("reflect_long"), std::string::npos);
}

}  // namespace
}  // namespace netcl::ir
