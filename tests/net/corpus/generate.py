#!/usr/bin/env python3
"""Regenerates the checked-in fuzz seed corpus (ISSUE 8).

One file per interesting shape, three directories for the three parsers:

  packet/   UDP datagrams for net::deserialize_packet_e
  trailer/  INT trailers for sim::parse_trailer_e
  control/  deframed request payloads for SwdServer::handle_control

The files are deterministic functions of this script — no randomness, no
timestamps — so regeneration is always byte-identical and a corpus diff
in review means the wire format actually changed. The same files are the
seed inputs for the libFuzzer harnesses (tests/fuzz/) and are replayed
with deterministic mutations by test_fuzz_replay on every ctest run.

Layouts mirrored here (keep in sync with the C++ codecs):
  packet:  'N' 'C' 'L' ver | u16 src dst from to | u8 comp | u8 flags |
           u16 len | payload | [trailer when flags bit0]
  trailer: u8 count | count * (u16 dev, u32 gen, u64 in, u64 out,
           u32 qdepth, u32 ops)   (30 bytes per hop)
  control: u64 client | u64 request | u8 opcode | operands
"""
import os
import struct

HERE = os.path.dirname(os.path.abspath(__file__))


def emit(subdir, name, data):
    path = os.path.join(HERE, subdir)
    os.makedirs(path, exist_ok=True)
    with open(os.path.join(path, name), "wb") as f:
        f.write(data)


def header(src=3, dst=9, frm=0, to=1, comp=1, flags=0, length=0, version=1):
    return b"NCL" + bytes([version]) + struct.pack(
        "<HHHHBBH", src, dst, frm, to, comp, flags, length)


def hop(dev=1, gen=7, ingress=1000, egress=2000, qdepth=3, ops=12):
    return struct.pack("<HIQQII", dev, gen, ingress, egress, qdepth, ops)


def trailer(*hops):
    return bytes([len(hops)]) + b"".join(hops)


def cstr(s):
    raw = s.encode()
    return struct.pack("<H", len(raw)) + raw


def request(opcode, operands=b"", client=0x11, reqid=1):
    return struct.pack("<QQB", client, reqid, opcode) + operands


# --- packet/ ---------------------------------------------------------------
payload = bytes([1, 2, 3, 4, 0xFF])
emit("packet", "valid_min", header())
emit("packet", "valid_payload", header(length=len(payload)) + payload)
emit("packet", "valid_telemetry",
     header(flags=1, length=len(payload)) + payload + trailer(hop(), hop(dev=2)))
emit("packet", "valid_telemetry_0hops", header(flags=1) + trailer())
emit("packet", "empty", b"")
emit("packet", "short_header", header()[:8])
emit("packet", "bad_magic", b"GET / HTTP/1.0\r\n\r\n")
emit("packet", "bad_version", header(version=2, length=len(payload)) + payload)
emit("packet", "len_overrun", header(length=100) + payload)
emit("packet", "trailing_slack", header(length=len(payload)) + payload + b"\x00\x00")
emit("packet", "trailer_truncated",
     header(flags=1, length=len(payload)) + payload + trailer(hop())[:-4])
emit("packet", "trailer_count_over_max",
     header(flags=1) + bytes([16]) + hop() * 16)

# --- trailer/ --------------------------------------------------------------
emit("trailer", "hops_0", trailer())
emit("trailer", "hops_2", trailer(hop(), hop(dev=2, gen=8)))
emit("trailer", "hops_max", trailer(*[hop(dev=d) for d in range(15)]))
emit("trailer", "empty", b"")
emit("trailer", "count_over_max", bytes([16]) + hop() * 16)
emit("trailer", "size_mismatch", trailer(hop()) + b"\xAA")
emit("trailer", "count_without_hops", bytes([3]))

# --- control/ --------------------------------------------------------------
emit("control", "ping", request(1))
emit("control", "stats", request(6))
emit("control", "metrics_text", request(9))
emit("control", "list_kernels", request(13))
emit("control", "managed_write",
     request(2, cstr("thresh") + struct.pack("<H", 0) + struct.pack("<Q", 42)))
emit("control", "managed_read", request(3, cstr("thresh") + struct.pack("<H", 0)))
emit("control", "set_multicast",
     request(8, struct.pack("<HH", 5, 2) + struct.pack("<HH", 1, 2)))
emit("control", "flight_dump", request(10, struct.pack("<I", 5)))
source = b"_kernel(9) void noop(unsigned x) { return ncl::reflect(); }"
emit("control", "load_kernel",
     request(11, struct.pack("<I", 4) + b"\x00" + cstr("noop") +
             struct.pack("<H", 0) + struct.pack("<I", len(source)) + source))
emit("control", "load_kernel_len_bomb",
     request(11, struct.pack("<I", 4) + b"\x00" + cstr("noop") +
             struct.pack("<H", 0) + struct.pack("<I", 0xFFFFFFFF)))
emit("control", "unload_kernel", request(12, struct.pack("<I", 4)))
emit("control", "unknown_opcode", request(200, b"\x01\x02\x03"))
emit("control", "truncated", request(2)[:9])
emit("control", "empty", b"")

print("corpus regenerated under", HERE)
