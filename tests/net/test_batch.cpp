// Batch-equivalence suite for Transport v2 (ISSUE 5).
//
// The tentpole claim is that batching changes the cost, never the bytes:
// a send_batch must put the exact same datagrams on the wire, in the same
// order, as the equivalent sequence of single sends — through the buffer
// pool, the sendmmsg chunking (including partial-completion resume), and
// both transport implementations.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>
#include <span>
#include <vector>

#include "apps/sources.hpp"
#include "driver/compiler.hpp"
#include "net/buffer_pool.hpp"
#include "net/factory.hpp"
#include "net/sim_transport.hpp"
#include "net/udp_transport.hpp"
#include "net/wire.hpp"
#include "runtime/host.hpp"
#include "sim/fabric.hpp"

namespace netcl::net {
namespace {

using runtime::HostRuntime;
using runtime::Message;
using sim::ArgValues;

sim::Packet numbered_packet(std::uint8_t seq) {
  sim::Packet packet;
  packet.has_netcl = true;
  packet.netcl.src = 1;
  packet.netcl.dst = 2;
  packet.netcl.to = 3;
  packet.netcl.comp = 7;
  packet.payload = {seq, static_cast<std::uint8_t>(seq + 1),
                    static_cast<std::uint8_t>(seq * 3), 0xAB};
  packet.netcl.len = static_cast<std::uint16_t>(packet.payload.size());
  return packet;
}

// --- serialize-into-caller-storage overload -----------------------------------

TEST(BatchWire, SerializeIntoBufferMatchesReturningForm) {
  std::vector<std::uint8_t> buffer;
  for (std::uint8_t seq = 0; seq < 6; ++seq) {
    const sim::Packet packet = numbered_packet(seq);
    const std::vector<std::uint8_t> golden = serialize_packet(packet);
    // Leftover bytes from a previous (recycled) use must not leak through.
    buffer.assign(97, 0xEE);
    serialize_packet(packet, buffer);
    EXPECT_EQ(buffer, golden) << "seq " << int(seq);
  }
}

// --- BufferPool ---------------------------------------------------------------

TEST(BufferPool, RecyclesCapacityEmptyAndBounded) {
  BufferPool pool(2);
  std::vector<std::uint8_t> first = pool.acquire();
  EXPECT_EQ(pool.reuses(), 0u);  // nothing pooled yet: fresh allocation
  first.reserve(512);
  first.assign(64, 0xCD);
  pool.release(std::move(first));
  EXPECT_EQ(pool.pooled(), 1u);

  // The recycled buffer comes back empty but keeps its capacity.
  std::vector<std::uint8_t> again = pool.acquire();
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), 512u);

  // The free list is bounded: a third release is dropped, not hoarded.
  pool.release(std::vector<std::uint8_t>(8, 1));
  pool.release(std::vector<std::uint8_t>(8, 2));
  pool.release(std::vector<std::uint8_t>(8, 3));
  EXPECT_EQ(pool.pooled(), 2u);
}

// --- UDP wire traffic ---------------------------------------------------------

/// Plain blocking UDP socket that records raw datagrams, so the tests see
/// exactly what the transport put on the wire.
class RawSink {
 public:
  RawSink() {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
    timeval timeout{2, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  }
  ~RawSink() { ::close(fd_); }

  [[nodiscard]] std::uint16_t port() const { return port_; }

  std::vector<std::vector<std::uint8_t>> read(std::size_t count) {
    std::vector<std::vector<std::uint8_t>> datagrams;
    std::vector<std::uint8_t> buffer(65536);
    while (datagrams.size() < count) {
      const ssize_t n = ::recv(fd_, buffer.data(), buffer.size(), 0);
      if (n <= 0) break;  // timeout: return what arrived, the test will fail
      datagrams.emplace_back(buffer.begin(), buffer.begin() + n);
    }
    return datagrams;
  }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

TEST(BatchUdp, BatchedWireBytesMatchPerPacketSends) {
  constexpr std::size_t kCount = 10;
  std::vector<std::vector<std::uint8_t>> golden;
  for (std::uint8_t seq = 0; seq < kCount; ++seq) {
    golden.push_back(serialize_packet(numbered_packet(seq)));
  }

  RawSink sink;
  UdpTransport::Options options;
  options.peer_host = "127.0.0.1";
  options.peer_port = sink.port();

  {  // v1 shape: one send() per packet.
    UdpTransport tx(options);
    ASSERT_TRUE(tx.valid()) << tx.error();
    for (std::uint8_t seq = 0; seq < kCount; ++seq) tx.send(numbered_packet(seq));
    EXPECT_EQ(tx.packets_sent.value(), kCount);
    const auto datagrams = sink.read(kCount);
    ASSERT_EQ(datagrams.size(), kCount);
    EXPECT_EQ(datagrams, golden);
  }
  {  // v2: the whole batch in one call — identical bytes, identical order.
    UdpTransport tx(options);
    ASSERT_TRUE(tx.valid()) << tx.error();
    std::vector<sim::Packet> batch;
    for (std::uint8_t seq = 0; seq < kCount; ++seq) batch.push_back(numbered_packet(seq));
    tx.send_batch(batch);
    EXPECT_EQ(tx.packets_sent.value(), kCount);
    // Batching collapses syscalls (1 with sendmmsg, kCount on the
    // fallback path) but never exceeds one per packet.
    EXPECT_GE(tx.send_syscalls.value(), 1u);
    EXPECT_LE(tx.send_syscalls.value(), kCount);
    const auto datagrams = sink.read(kCount);
    ASSERT_EQ(datagrams.size(), kCount);
    EXPECT_EQ(datagrams, golden);
  }
}

TEST(BatchUdp, PartialSyscallBatchesResumeInOrder) {
  // max_syscall_batch = 3 forces a 10-packet batch through the chunking /
  // offset-resume arithmetic: 3 + 3 + 3 + 1.
  RawSink sink;
  UdpTransport::Options options;
  options.peer_host = "127.0.0.1";
  options.peer_port = sink.port();
  options.max_syscall_batch = 3;
  UdpTransport tx(options);
  ASSERT_TRUE(tx.valid()) << tx.error();

  constexpr std::size_t kCount = 10;
  std::vector<sim::Packet> batch;
  for (std::uint8_t seq = 0; seq < kCount; ++seq) batch.push_back(numbered_packet(seq));
  tx.send_batch(batch);
  EXPECT_EQ(tx.packets_sent.value(), kCount);
  EXPECT_GE(tx.send_syscalls.value(), 4u);  // ceil(10/3) chunks (10 on fallback)

  const auto datagrams = sink.read(kCount);
  ASSERT_EQ(datagrams.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(datagrams[i], serialize_packet(numbered_packet(static_cast<std::uint8_t>(i))))
        << "datagram " << i;
  }
}

TEST(BatchUdp, ReceiverGetsWholeBurstsInArrivalOrder) {
  UdpTransport rx;
  ASSERT_TRUE(rx.valid()) << rx.error();
  UdpTransport::Options options;
  options.peer_host = "127.0.0.1";
  options.peer_port = rx.local_port();
  UdpTransport tx(options);
  ASSERT_TRUE(tx.valid()) << tx.error();

  std::vector<std::uint8_t> seen;
  std::size_t deliveries = 0;
  rx.set_batch_receiver([&](std::span<const sim::Packet> burst) {
    ++deliveries;
    for (const sim::Packet& packet : burst) seen.push_back(packet.payload.at(0));
  });

  constexpr std::size_t kCount = 24;
  std::vector<sim::Packet> batch;
  for (std::uint8_t seq = 0; seq < kCount; ++seq) batch.push_back(numbered_packet(seq));
  tx.send_batch(batch);
  ASSERT_TRUE(rx.run_until([&] { return seen.size() >= kCount; }, 2e9));

  ASSERT_EQ(seen.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(seen[i], i) << "position " << i;
  // The drain hands bursts, not single packets, to the batch receiver.
  EXPECT_LE(deliveries, kCount);
  EXPECT_EQ(rx.packets_received.value(), kCount);
}

// --- SimTransport / HostRuntime batch equivalence -----------------------------

driver::CompileResult compile_calc() {
  apps::AppSource app = apps::calc_source();
  driver::CompileOptions options;
  options.device_id = 1;
  options.defines = app.defines;
  driver::CompileResult compiled = driver::compile_netcl(app.source, options);
  EXPECT_TRUE(compiled.ok) << compiled.errors;
  return compiled;
}

std::vector<std::vector<std::uint8_t>> run_calc_ops(bool batched) {
  driver::CompileResult compiled = compile_calc();
  const KernelSpec spec = compiled.specs.at(1);
  sim::Fabric fabric(11);
  fabric.add_device(driver::make_device(std::move(compiled), 1));
  HostRuntime host(fabric, 1);
  host.register_spec(1, spec);
  fabric.connect(sim::host_ref(1), sim::device_ref(1));

  std::vector<std::vector<std::uint8_t>> results;
  host.on_receive([&](const Message&, ArgValues& args) {
    results.push_back(sim::encode_args(spec, args));
  });

  constexpr std::uint64_t kOps = 12;
  std::vector<HostRuntime::Outbound> outbound;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ArgValues args = sim::make_args(spec);
    args[0][0] = 1 + i % 5;  // cycle through the five calc opcodes
    args[1][0] = 1000 + i;
    args[2][0] = 77 * i;
    outbound.push_back({Message(1, 0, 1, 1), std::move(args)});
  }
  if (batched) {
    host.send_batch(outbound);
  } else {
    for (HostRuntime::Outbound& op : outbound) host.send(op.message, op.args);
  }
  fabric.run();
  EXPECT_EQ(results.size(), kOps);
  return results;
}

TEST(BatchSim, SendBatchResultsAreByteIdenticalToPerPacketSends) {
  EXPECT_EQ(run_calc_ops(true), run_calc_ops(false));
}

// --- URI factory --------------------------------------------------------------

TEST(TransportFactory, BuildsSimAndUdpFromUris) {
  sim::Fabric fabric;
  TransportContext context;
  context.fabric = &fabric;
  context.host_id = 4;
  std::string error;
  const std::unique_ptr<Transport> sim_transport =
      make_transport("sim://fabric", context, &error);
  ASSERT_NE(sim_transport, nullptr) << error;
  EXPECT_STREQ(sim_transport->kind(), "sim");

  const std::unique_ptr<Transport> udp_transport =
      make_transport("udp://127.0.0.1:9", {}, &error);
  ASSERT_NE(udp_transport, nullptr) << error;
  EXPECT_STREQ(udp_transport->kind(), "udp");
}

TEST(TransportFactory, RejectsMalformedUris) {
  std::string error;
  EXPECT_EQ(make_transport("tcp://127.0.0.1:9", {}, &error), nullptr);
  EXPECT_NE(error.find("sim://"), std::string::npos) << error;  // names the schemes
  EXPECT_EQ(make_transport("udp://127.0.0.1", {}, &error), nullptr);       // no port
  EXPECT_EQ(make_transport("udp://127.0.0.1:0", {}, &error), nullptr);     // port 0
  EXPECT_EQ(make_transport("udp://127.0.0.1:zap", {}, &error), nullptr);   // not a number
  EXPECT_EQ(make_transport("sim://fabric", {}, &error), nullptr);          // no fabric
  EXPECT_EQ(make_transport("", {}, &error), nullptr);
}

}  // namespace
}  // namespace netcl::net
