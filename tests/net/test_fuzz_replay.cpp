// Deterministic replay of the hostile-input corpus (ISSUE 8).
//
// Every seed in tests/net/corpus/ — plus a few thousand deterministic
// mutations of each (truncations, SplitMix64 byte flips, length-field
// perturbations) — is pushed through all three wire parsers on every
// ctest run. The invariants are the same ones the libFuzzer harnesses
// (tests/fuzz/) trap on: a parser either accepts or returns a typed
// kMalformed error, an accepted input round-trips byte-identically, and
// the control dispatcher always answers with a well-formed status byte.
// This keeps the corpus load-bearing under plain GCC + ctest (and under
// the sanitizer CI job); the coverage-guided harnesses only add mutation
// beyond what is enumerated here.
//
// NETCL_CORPUS_DIR is injected by tests/CMakeLists.txt and points at the
// source-tree corpus, so regenerating seeds needs no reconfigure.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "net/control.hpp"
#include "net/swd_server.hpp"
#include "net/wire.hpp"
#include "runtime/error.hpp"
#include "sim/switch.hpp"
#include "sim/telemetry.hpp"
#include "support/hashes.hpp"

namespace netcl::net {
namespace {

using Bytes = std::vector<std::uint8_t>;

std::vector<Bytes> load_corpus(const std::string& subdir) {
  const std::filesystem::path dir = std::filesystem::path(NETCL_CORPUS_DIR) / subdir;
  std::vector<Bytes> inputs;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream file(entry.path(), std::ios::binary);
    inputs.emplace_back(std::istreambuf_iterator<char>(file),
                        std::istreambuf_iterator<char>());
  }
  EXPECT_GE(inputs.size(), 5u) << "corpus directory " << dir << " looks empty";
  return inputs;
}

/// The seed plus its deterministic mutations: every truncation (and one
/// extension), 256 seeded single-byte flips, and perturbations of each
/// byte position that could be a length field (set to 0x00/0xFF), so
/// internal-consistency checks are exercised, not just framing.
std::vector<Bytes> mutations(const Bytes& seed, std::uint64_t salt) {
  std::vector<Bytes> out;
  out.push_back(seed);
  for (std::size_t cut = 0; cut < seed.size(); ++cut) {
    out.emplace_back(seed.begin(), seed.begin() + static_cast<std::ptrdiff_t>(cut));
  }
  Bytes extended = seed;
  extended.insert(extended.end(), {0xDE, 0xAD});
  out.push_back(std::move(extended));
  SplitMix64 rng(0x5EEDF00D ^ salt);
  for (int i = 0; i < 256 && !seed.empty(); ++i) {
    Bytes flipped = seed;
    flipped[rng.next_below(flipped.size())] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    out.push_back(std::move(flipped));
  }
  for (std::size_t pos = 0; pos < seed.size(); ++pos) {
    for (const std::uint8_t forced : {std::uint8_t{0x00}, std::uint8_t{0xFF}}) {
      if (seed[pos] == forced) continue;
      Bytes forced_bytes = seed;
      forced_bytes[pos] = forced;
      out.push_back(std::move(forced_bytes));
    }
  }
  return out;
}

void check_packet(const Bytes& input) {
  sim::Packet packet;
  const runtime::Error error = deserialize_packet_e(input, packet);
  if (!error.ok()) {
    ASSERT_EQ(error.kind, runtime::ErrorKind::kMalformed) << error.message;
    ASSERT_FALSE(error.message.empty());
    return;
  }
  Bytes wire;
  serialize_packet(packet, wire);
  ASSERT_EQ(wire, input) << "accepted datagram did not round-trip";
}

void check_trailer(const Bytes& input) {
  sim::TelemetryRecord record;
  const runtime::Error error = sim::parse_trailer_e(input, record);
  if (!error.ok()) {
    ASSERT_EQ(error.kind, runtime::ErrorKind::kMalformed) << error.message;
    ASSERT_FALSE(error.message.empty());
    return;
  }
  ASSERT_TRUE(record.requested);
  ASSERT_LE(record.hops.size(), sim::kMaxTelemetryHops);
  Bytes wire;
  sim::append_trailer(wire, record);
  ASSERT_EQ(wire, input) << "accepted trailer did not round-trip";
}

class FuzzReplay : public ::testing::Test {
 protected:
  /// One socketless-driven daemon shared by the whole suite (each server
  /// binds three sockets; per-input construction would exhaust fds).
  static SwdServer& server() {
    static auto* instance = [] {
      auto device = std::make_unique<sim::SwitchDevice>(1);
      return new SwdServer(std::move(device), SwdOptions{});
    }();
    return *instance;
  }

  static void check_control(const Bytes& input) {
    std::uint32_t length = 0;
    runtime::Error error;
    switch (parse_frame_header(input, length, error)) {
      case FrameParse::kNeedMore:
        ASSERT_LT(input.size(), kControlFrameHeaderBytes);
        break;
      case FrameParse::kFrame:
        ASSERT_LE(length, kMaxControlFrame);
        break;
      case FrameParse::kMalformed:
        ASSERT_EQ(error.kind, runtime::ErrorKind::kMalformed);
        ASSERT_FALSE(error.message.empty());
        break;
    }

    const Bytes response = server().handle_control(input);
    ASSERT_FALSE(response.empty()) << "dispatcher must always answer";
    ASSERT_TRUE(response[0] == kControlOk || response[0] == kControlError);

    // Client direction: a hostile daemon's bytes through the stats decoder.
    ByteReader reader(input);
    sim::DeviceStats stats;
    (void)decode_stats(reader, stats);
  }
};

TEST_F(FuzzReplay, PacketCorpusAndMutations) {
  std::uint64_t salt = 0;
  for (const Bytes& seed : load_corpus("packet")) {
    for (const Bytes& input : mutations(seed, ++salt)) {
      ASSERT_NO_FATAL_FAILURE(check_packet(input));
      // Datagram seeds double as trailer-parser inputs: total means total.
      ASSERT_NO_FATAL_FAILURE(check_trailer(input));
    }
  }
}

TEST_F(FuzzReplay, TrailerCorpusAndMutations) {
  std::uint64_t salt = 100;
  for (const Bytes& seed : load_corpus("trailer")) {
    for (const Bytes& input : mutations(seed, ++salt)) {
      ASSERT_NO_FATAL_FAILURE(check_trailer(input));
      ASSERT_NO_FATAL_FAILURE(check_packet(input));
    }
  }
}

TEST_F(FuzzReplay, ControlCorpusAndMutations) {
  std::uint64_t salt = 200;
  for (const Bytes& seed : load_corpus("control")) {
    for (const Bytes& input : mutations(seed, ++salt)) {
      ASSERT_NO_FATAL_FAILURE(check_control(input));
    }
  }
}

// Cross-surface: full control *frames* (header + payload) through the
// frame classifier, then the payload through the dispatcher — the exact
// sequence service_connection performs on its inbox.
TEST_F(FuzzReplay, FramedControlRequests) {
  std::uint64_t salt = 300;
  for (const Bytes& seed : load_corpus("control")) {
    Bytes frame = {kControlFrameMagic[0], kControlFrameMagic[1], kControlFrameVersion, 0};
    const auto length = static_cast<std::uint32_t>(seed.size());
    for (int b = 0; b < 4; ++b) frame.push_back(static_cast<std::uint8_t>(length >> (8 * b)));
    frame.insert(frame.end(), seed.begin(), seed.end());
    for (const Bytes& input : mutations(frame, ++salt)) {
      std::uint32_t parsed_length = 0;
      runtime::Error error;
      const FrameParse parse = parse_frame_header(input, parsed_length, error);
      if (parse != FrameParse::kFrame) continue;
      ASSERT_LE(parsed_length, kMaxControlFrame);
      if (input.size() < kControlFrameHeaderBytes + parsed_length) continue;
      const Bytes payload(input.begin() + kControlFrameHeaderBytes,
                          input.begin() + kControlFrameHeaderBytes + parsed_length);
      ASSERT_NO_FATAL_FAILURE(check_control(payload));
    }
  }
}

}  // namespace
}  // namespace netcl::net
