// Hostile-wire hardening and overload control (ISSUE 8).
//
// Unit coverage for the perimeter primitives (token bucket, bounded
// per-source counts, control frame classifier, wire-version gate), then
// end-to-end checks against a real daemon: a flooding tenant sheds its
// own packets while a co-resident keeps its full service, the bounded
// ingress queue drops oldest instead of growing, malformed datagrams are
// counted and attributed per source, garbage on the control port gets a
// typed error and a close, and a slow-read (slowloris) connection is
// reaped on the read deadline.
//
// The data-plane tests drive SwdServer::poll_once from the test thread —
// no serving thread, no sleeps — so admission arithmetic is asserted
// exactly, not statistically.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/sources.hpp"
#include "driver/compiler.hpp"
#include "net/control.hpp"
#include "net/policer.hpp"
#include "net/swd_server.hpp"
#include "net/wire.hpp"
#include "runtime/error.hpp"
#include "sim/switch.hpp"

namespace netcl::net {
namespace {

using Bytes = std::vector<std::uint8_t>;

// --- perimeter primitives -----------------------------------------------------

TEST(TokenBucket, StartsFullAndRefillsAtRate) {
  TokenBucket bucket(10.0, 2.0);  // 10 pps, burst 2
  EXPECT_FALSE(bucket.unlimited());
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_FALSE(bucket.try_take(0.0));    // burst exhausted
  EXPECT_FALSE(bucket.try_take(0.05));   // only half a token accrued
  EXPECT_TRUE(bucket.try_take(0.2));     // 1.5 more tokens accrued
  EXPECT_TRUE(bucket.try_take(0.2));
  EXPECT_FALSE(bucket.try_take(0.2));
  // Time moving backwards must not mint tokens.
  EXPECT_FALSE(bucket.try_take(0.1));
}

TEST(TokenBucket, BurstCapsAccrual) {
  TokenBucket bucket(1000.0, 3.0);
  // An hour idle still holds only `burst` tokens.
  EXPECT_TRUE(bucket.try_take(3600.0));
  EXPECT_TRUE(bucket.try_take(3600.0));
  EXPECT_TRUE(bucket.try_take(3600.0));
  EXPECT_FALSE(bucket.try_take(3600.0));
}

TEST(TokenBucket, DefaultIsUnlimited) {
  TokenBucket bucket;
  EXPECT_TRUE(bucket.unlimited());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(bucket.try_take(0.0));
}

TEST(BoundedCounts, CapsDistinctKeysAndRanksHeaviestFirst) {
  BoundedCounts counts(2);
  counts.add("10.0.0.1:9");
  counts.add("10.0.0.2:9", 5);
  counts.add("10.0.0.1:9", 2);
  // Third distinct key: at capacity, lumped into overflow — a spoofed
  // source sweep cannot grow the map.
  counts.add("10.0.0.3:9", 7);
  EXPECT_EQ(counts.tracked(), 2u);
  EXPECT_EQ(counts.overflow(), 7u);
  EXPECT_EQ(counts.total(), 15u);
  const auto top = counts.top(5);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "10.0.0.2:9");
  EXPECT_EQ(top[0].second, 5u);
  EXPECT_EQ(top[1].first, "10.0.0.1:9");
  EXPECT_EQ(top[1].second, 3u);
}

TEST(ControlFraming, HeaderClassification) {
  std::uint32_t length = 0;
  runtime::Error error;

  const Bytes valid = {'N', 'C', 1, 0, 0x34, 0x12, 0, 0};
  EXPECT_EQ(parse_frame_header(valid, length, error), FrameParse::kFrame);
  EXPECT_EQ(length, 0x1234u);

  const Bytes short_header = {'N', 'C', 1};
  EXPECT_EQ(parse_frame_header(short_header, length, error), FrameParse::kNeedMore);

  const Bytes http = {'G', 'E', 'T', ' ', '/', ' ', 'H', 'T'};
  EXPECT_EQ(parse_frame_header(http, length, error), FrameParse::kMalformed);
  EXPECT_EQ(error.kind, runtime::ErrorKind::kMalformed);

  const Bytes bad_version = {'N', 'C', 2, 0, 4, 0, 0, 0};
  EXPECT_EQ(parse_frame_header(bad_version, length, error), FrameParse::kMalformed);

  const Bytes bad_reserved = {'N', 'C', 1, 9, 4, 0, 0, 0};
  EXPECT_EQ(parse_frame_header(bad_reserved, length, error), FrameParse::kMalformed);

  Bytes oversize = {'N', 'C', 1, 0};
  const std::uint32_t huge = kMaxControlFrame + 1;
  for (int b = 0; b < 4; ++b) oversize.push_back(static_cast<std::uint8_t>(huge >> (8 * b)));
  EXPECT_EQ(parse_frame_header(oversize, length, error), FrameParse::kMalformed);
  EXPECT_NE(error.message.find("exceeds"), std::string::npos) << error.message;
}

TEST(Wire, UnknownVersionFailsClosed) {
  sim::Packet packet;
  packet.has_netcl = true;
  packet.payload = {1, 2, 3};
  Bytes wire = serialize_packet(packet);
  wire[3] = 2;  // future wire version
  sim::Packet decoded;
  const runtime::Error error = deserialize_packet_e(wire, decoded);
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.kind, runtime::ErrorKind::kMalformed);
  EXPECT_NE(error.message.find("version"), std::string::npos) << error.message;
}

// --- fixtures -----------------------------------------------------------------

sim::ProgramArtifact calc_artifact(int comp, KernelSpec* spec_out = nullptr) {
  const apps::AppSource app = apps::calc_source();
  driver::CompileOptions options;
  options.defines = app.defines;
  options.defines["COMP"] = static_cast<std::uint64_t>(comp);
  driver::CompileResult compiled = driver::compile_netcl(app.source, options);
  EXPECT_TRUE(compiled.ok) << compiled.errors;
  if (spec_out != nullptr) *spec_out = compiled.specs.at(comp);
  return driver::make_artifact(std::move(compiled), "calc" + std::to_string(comp));
}

/// Device 1 with two co-resident calc tenants (tenant 1 on comp 1, tenant
/// 2 on comp 2) — the minimal noisy-neighbour topology.
std::unique_ptr<sim::SwitchDevice> two_tenant_device(KernelSpec& spec1, KernelSpec& spec2) {
  auto device = std::make_unique<sim::SwitchDevice>(1);
  EXPECT_FALSE(device->load_program(1, calc_artifact(1, &spec1)));
  EXPECT_FALSE(device->load_program(2, calc_artifact(2, &spec2)));
  return device;
}

/// A raw UDP endpoint playing one host; source port is the identity the
/// daemon learns, so victim and flooder are distinguishable.
class UdpEndpoint {
 public:
  explicit UdpEndpoint(std::uint16_t server_port) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server_port);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    timeval timeout{2, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  }
  ~UdpEndpoint() {
    if (fd_ >= 0) ::close(fd_);
  }
  UdpEndpoint(const UdpEndpoint&) = delete;
  UdpEndpoint& operator=(const UdpEndpoint&) = delete;

  void send(const Bytes& datagram) {
    EXPECT_EQ(::send(fd_, datagram.data(), datagram.size(), 0),
              static_cast<ssize_t>(datagram.size()));
  }
  bool receive(sim::Packet& out) {
    std::uint8_t buffer[4096];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n <= 0) return false;
    return deserialize_packet({buffer, static_cast<std::size_t>(n)}, out);
  }

 private:
  int fd_ = -1;
};

Bytes calc_datagram(const KernelSpec& spec, std::uint16_t src_host, std::uint8_t comp,
                    std::uint64_t a, std::uint64_t b) {
  sim::Packet packet;
  packet.has_netcl = true;
  packet.netcl.src = src_host;
  packet.netcl.to = 1;  // this device
  packet.netcl.comp = comp;
  sim::ArgValues args = sim::make_args(spec);
  args[0][0] = apps::kCalcAdd;
  args[1][0] = a;
  args[2][0] = b;
  packet.payload = sim::encode_args(spec, args);
  packet.netcl.len = static_cast<std::uint16_t>(packet.payload.size());
  return serialize_packet(packet);
}

Bytes control_request(std::uint8_t opcode, std::uint64_t request_id = 1) {
  ByteWriter w;
  w.u64(0xBEEF);
  w.u64(request_id);
  w.u8(opcode);
  return w.bytes();
}

int tcp_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  timeval timeout{3, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  return fd;
}

// --- per-tenant policing ------------------------------------------------------

TEST(Overload, PolicerShedsFloodingTenantOnly) {
  KernelSpec spec1, spec2;
  SwdOptions options;
  options.tenant_rate_pps = 10.0;  // refill is negligible within the test
  options.tenant_burst = 4.0;
  SwdServer server(two_tenant_device(spec1, spec2), options);
  ASSERT_TRUE(server.valid()) << server.error();

  UdpEndpoint victim(server.udp_port());
  UdpEndpoint flooder(server.udp_port());
  for (std::uint64_t i = 0; i < 50; ++i) {
    flooder.send(calc_datagram(spec2, /*src_host=*/2, /*comp=*/2, i, 1));
  }
  for (std::uint64_t i = 0; i < 4; ++i) {
    victim.send(calc_datagram(spec1, /*src_host=*/1, /*comp=*/1, 40 + i, 2));
  }
  for (int cycle = 0; cycle < 64; ++cycle) server.poll_once(0);

  // The flooder blew through its own burst; the victim's bucket is
  // untouched and every one of its packets was served.
  EXPECT_EQ(server.packets_received.value(), 54u);
  EXPECT_GE(server.packets_shed_policer.value(), 40u);
  std::size_t victim_responses = 0;
  sim::Packet response;
  while (victim_responses < 4 && victim.receive(response)) {
    EXPECT_EQ(response.netcl.comp, 1);
    ++victim_responses;
  }
  EXPECT_EQ(victim_responses, 4u);
}

TEST(Overload, IngressQueueDropsOldestNotNewest) {
  KernelSpec spec1, spec2;
  SwdOptions options;
  options.ingress_queue_capacity = 4;
  options.max_cycle_execute = 1;
  SwdServer server(two_tenant_device(spec1, spec2), options);
  ASSERT_TRUE(server.valid()) << server.error();

  UdpEndpoint host(server.udp_port());
  for (std::uint64_t i = 0; i < 40; ++i) {
    host.send(calc_datagram(spec1, /*src_host=*/1, /*comp=*/1, i, 1));
  }
  // One cycle drains and admits all 40: the queue holds the *newest* 4,
  // 36 oldest were shed, and exactly one execution slot was spent.
  server.poll_once(0);
  EXPECT_EQ(server.packets_received.value(), 40u);
  EXPECT_EQ(server.packets_shed_queue.value(), 36u);
  EXPECT_EQ(server.packets_sent.value(), 1u);
  for (int cycle = 0; cycle < 8; ++cycle) server.poll_once(0);
  EXPECT_EQ(server.packets_sent.value(), 4u);
  EXPECT_EQ(server.packets_shed_queue.value(), 36u);
}

// --- malformed-datagram accounting --------------------------------------------

TEST(Overload, MalformedDatagramsCountedAndAttributedBySource) {
  KernelSpec spec1, spec2;
  SwdServer server(two_tenant_device(spec1, spec2), SwdOptions{});
  ASSERT_TRUE(server.valid()) << server.error();

  UdpEndpoint attacker(server.udp_port());
  attacker.send({'G', 'E', 'T', ' ', '/', ' '});           // bad magic
  attacker.send({'N', 'C', 'L', 1, 0});                    // truncated header
  Bytes bad_version = calc_datagram(spec1, 1, 1, 1, 1);
  bad_version[3] = 9;                                      // unknown version
  attacker.send(bad_version);
  attacker.send(calc_datagram(spec1, 1, 1, 2, 3));         // one valid packet
  for (int cycle = 0; cycle < 16; ++cycle) server.poll_once(0);

  EXPECT_EQ(server.packets_malformed.value(), 3u);
  EXPECT_EQ(server.packets_received.value(), 1u);

  // The exposition attributes the offender: a per-source registry renders
  // with a source="ip:port" label (ncl-top's malformed-sources table).
  const Bytes response = server.handle_control(control_request(
      static_cast<std::uint8_t>(ControlOp::kMetricsText)));
  ASSERT_FALSE(response.empty());
  ASSERT_EQ(response[0], kControlOk);
  const std::string text(response.begin() + 1, response.end());
  EXPECT_NE(text.find("netcl_malformed_by_source"), std::string::npos) << text;
  EXPECT_NE(text.find("source=\"127.0.0.1:"), std::string::npos) << text;
  EXPECT_NE(text.find("netcl_packets_malformed_total"), std::string::npos) << text;
}

// --- control-plane perimeter --------------------------------------------------

TEST(Overload, ControlGarbageGetsTypedErrorThenClose) {
  KernelSpec spec1, spec2;
  SwdServer server(two_tenant_device(spec1, spec2), SwdOptions{});
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });

  const int fd = tcp_connect(server.control_port());
  const std::string garbage = "GET / HTTP/1.0\r\n\r\n";
  ASSERT_TRUE(write_all(fd, reinterpret_cast<const std::uint8_t*>(garbage.data()),
                        garbage.size()));
  // The daemon answers one typed failure frame, then closes.
  Bytes payload;
  ASSERT_TRUE(read_frame(fd, payload));
  ByteReader reader(payload);
  EXPECT_EQ(reader.u8(), kControlError);
  EXPECT_EQ(static_cast<runtime::ErrorKind>(reader.u8()), runtime::ErrorKind::kMalformed);
  EXPECT_FALSE(reader.str().empty());
  std::uint8_t byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0) << "connection should be closed";
  ::close(fd);

  // The perimeter is per-connection: a well-behaved client still works.
  ControlClient client("127.0.0.1", server.control_port());
  std::uint16_t device_id = 0;
  EXPECT_TRUE(client.ping(device_id));
  EXPECT_EQ(device_id, 1);

  server.stop();
  serving.join();
  EXPECT_GE(server.control_malformed.value(), 1u);
}

TEST(Overload, OversizeControlFrameRejectedBeforeBuffering) {
  KernelSpec spec1, spec2;
  SwdServer server(two_tenant_device(spec1, spec2), SwdOptions{});
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });

  const int fd = tcp_connect(server.control_port());
  Bytes header = {'N', 'C', 1, 0};
  const std::uint32_t huge = kMaxControlFrame + 1;
  for (int b = 0; b < 4; ++b) header.push_back(static_cast<std::uint8_t>(huge >> (8 * b)));
  ASSERT_TRUE(write_all(fd, header.data(), header.size()));
  Bytes payload;
  ASSERT_TRUE(read_frame(fd, payload));
  ByteReader reader(payload);
  EXPECT_EQ(reader.u8(), kControlError);
  EXPECT_EQ(static_cast<runtime::ErrorKind>(reader.u8()), runtime::ErrorKind::kMalformed);
  std::uint8_t byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);

  server.stop();
  serving.join();
  EXPECT_GE(server.control_malformed.value(), 1u);
}

TEST(Overload, SlowReadConnectionReapedOnDeadline) {
  KernelSpec spec1, spec2;
  SwdOptions options;
  options.read_deadline_seconds = 0.2;
  SwdServer server(two_tenant_device(spec1, spec2), options);
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });

  // A slowloris client: valid preamble start, then silence. The partial
  // frame pins frame_started_s; the deadline reaps it even though the
  // connection is not idle-timeout old.
  const int fd = tcp_connect(server.control_port());
  const Bytes partial = {'N', 'C', 1, 0};
  ASSERT_TRUE(write_all(fd, partial.data(), partial.size()));
  std::uint8_t byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0) << "stalled connection should be reaped";
  ::close(fd);

  server.stop();
  serving.join();
  EXPECT_EQ(server.connections_reaped_slow.value(), 1u);
}

TEST(Overload, KernelSourceLengthBombRejectedBeforeAllocation) {
  KernelSpec spec1, spec2;
  SwdServer server(two_tenant_device(spec1, spec2), SwdOptions{});
  ASSERT_TRUE(server.valid()) << server.error();

  // kLoadKernel with src_len 0xFFFFFFFF and no bytes behind it: the
  // length must be validated against the frame before any allocation.
  ByteWriter w;
  w.u64(0xBEEF);
  w.u64(7);
  w.u8(static_cast<std::uint8_t>(ControlOp::kLoadKernel));
  w.u32(4);         // tenant
  w.u8(0);          // flags
  w.str("bomb");    // name
  w.u16(0);         // defines
  w.u32(0xFFFFFFFF);  // src_len with no source behind it
  const Bytes response = server.handle_control(w.bytes());
  ASSERT_GE(response.size(), 2u);
  ByteReader reader(response);
  EXPECT_EQ(reader.u8(), kControlError);
  EXPECT_EQ(static_cast<runtime::ErrorKind>(reader.u8()), runtime::ErrorKind::kMalformed);
  EXPECT_NE(reader.str().find("overruns"), std::string::npos);

  const Bytes unknown = server.handle_control(control_request(200, /*request_id=*/8));
  ASSERT_GE(unknown.size(), 2u);
  ByteReader unknown_reader(unknown);
  EXPECT_EQ(unknown_reader.u8(), kControlError);
  EXPECT_EQ(static_cast<runtime::ErrorKind>(unknown_reader.u8()),
            runtime::ErrorKind::kMalformed);
}

}  // namespace
}  // namespace netcl::net
