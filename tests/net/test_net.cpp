#include <gtest/gtest.h>

#include <thread>

#include "apps/sources.hpp"
#include "driver/compiler.hpp"
#include "net/control.hpp"
#include "net/sim_transport.hpp"
#include "net/swd_server.hpp"
#include "net/udp_transport.hpp"
#include "net/wire.hpp"
#include "runtime/host.hpp"
#include "sim/fabric.hpp"

namespace netcl::net {
namespace {

using runtime::DeviceConnection;
using runtime::HostRuntime;
using runtime::Message;
using sim::ArgValues;

// --- wire format --------------------------------------------------------------

sim::Packet sample_packet() {
  sim::Packet packet;
  packet.has_netcl = true;
  packet.netcl.src = 3;
  packet.netcl.dst = 9;
  packet.netcl.from = 2;
  packet.netcl.to = 7;
  packet.netcl.comp = 5;
  packet.netcl.flags = 0xA0;
  packet.payload = {1, 2, 3, 4, 0xFF};
  packet.netcl.len = static_cast<std::uint16_t>(packet.payload.size());
  return packet;
}

TEST(Wire, PacketRoundTrip) {
  const sim::Packet packet = sample_packet();
  const std::vector<std::uint8_t> bytes = serialize_packet(packet);
  EXPECT_EQ(bytes.size(), kWireHeaderBytes + packet.payload.size());

  sim::Packet decoded;
  ASSERT_TRUE(deserialize_packet(bytes, decoded));
  EXPECT_EQ(decoded.netcl.src, packet.netcl.src);
  EXPECT_EQ(decoded.netcl.dst, packet.netcl.dst);
  EXPECT_EQ(decoded.netcl.from, packet.netcl.from);
  EXPECT_EQ(decoded.netcl.to, packet.netcl.to);
  EXPECT_EQ(decoded.netcl.comp, packet.netcl.comp);
  EXPECT_EQ(decoded.netcl.flags, packet.netcl.flags);
  EXPECT_EQ(decoded.payload, packet.payload);
}

TEST(Wire, RejectsBadMagicAndTruncation) {
  std::vector<std::uint8_t> bytes = serialize_packet(sample_packet());
  sim::Packet decoded;

  std::vector<std::uint8_t> corrupt = bytes;
  corrupt[0] = 'X';
  EXPECT_FALSE(deserialize_packet(corrupt, decoded));

  std::vector<std::uint8_t> header_cut(bytes.begin(), bytes.begin() + 8);
  EXPECT_FALSE(deserialize_packet(header_cut, decoded));

  // Header intact but the payload is shorter than the declared len.
  std::vector<std::uint8_t> payload_cut(bytes.begin(), bytes.end() - 2);
  EXPECT_FALSE(deserialize_packet(payload_cut, decoded));
}

TEST(Wire, ByteCodecRoundTrip) {
  ByteWriter writer;
  writer.u8(7);
  writer.u16(0xBEEF);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123456789ABCDEFULL);
  writer.str("thresh");
  writer.u64_vec({1, 2, 3});

  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.u8(), 7);
  EXPECT_EQ(reader.u16(), 0xBEEF);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.str(), "thresh");
  EXPECT_EQ(reader.u64_vec(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.at_end());

  reader.u64();  // over-read poisons the reader instead of faulting
  EXPECT_FALSE(reader.ok());
}

// --- UdpTransport -------------------------------------------------------------

TEST(UdpTransport, LoopbackRoundTrip) {
  UdpTransport alice;
  UdpTransport bob;
  ASSERT_TRUE(alice.valid()) << alice.error();
  ASSERT_TRUE(bob.valid()) << bob.error();
  alice.set_peer("127.0.0.1", bob.local_port());
  bob.set_peer("127.0.0.1", alice.local_port());

  sim::Packet seen;
  bool bob_got = false;
  bob.set_receiver([&](const sim::Packet& packet) {
    seen = packet;
    bob_got = true;
    sim::Packet reply = packet;
    reply.netcl.src = 9;
    bob.send(std::move(reply));
  });
  bool alice_got = false;
  alice.set_receiver([&](const sim::Packet& packet) {
    alice_got = packet.netcl.src == 9;
  });

  alice.send(sample_packet());
  ASSERT_TRUE(bob.run_until([&] { return bob_got; }, 5e9));
  EXPECT_EQ(seen.payload, sample_packet().payload);
  ASSERT_TRUE(alice.run_until([&] { return alice_got; }, 5e9));
  EXPECT_EQ(alice.packets_sent, 1u);
  EXPECT_EQ(alice.packets_received, 1u);
  EXPECT_EQ(bob.packets_received, 1u);
}

TEST(UdpTransport, TimersFireInDeadlineOrder) {
  UdpTransport transport;
  ASSERT_TRUE(transport.valid()) << transport.error();
  std::vector<int> order;
  transport.schedule(2e6, [&] { order.push_back(2); });
  transport.schedule(1e6, [&] { order.push_back(1); });
  ASSERT_TRUE(transport.run_until([&] { return order.size() == 2; }, 5e9));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(transport.timers_fired, 2u);
}

// --- SwdServer end-to-end -----------------------------------------------------

driver::CompileResult compile_calc(std::uint16_t device_id) {
  apps::AppSource app = apps::calc_source();
  driver::CompileOptions options;
  options.device_id = device_id;
  options.defines = app.defines;
  driver::CompileResult compiled = driver::compile_netcl(app.source, options);
  EXPECT_TRUE(compiled.ok) << compiled.errors;
  return compiled;
}

TEST(SwdServer, CalcMatchesSimulatedFabric) {
  driver::CompileResult compiled = compile_calc(1);
  const KernelSpec spec = compiled.specs.at(1);

  struct Case {
    std::uint64_t op, a, b;
  };
  const std::vector<Case> cases = {{apps::kCalcAdd, 20, 22},
                                   {apps::kCalcSub, 100, 58},
                                   {apps::kCalcAnd, 0xF0F0, 0xFF00},
                                   {apps::kCalcOr, 0xF0F0, 0x0F0F},
                                   {apps::kCalcXor, 0xFFFF, 0x00FF}};

  // Reference: the same ops through the simulated fabric.
  std::vector<std::vector<std::uint8_t>> sim_results;
  {
    driver::CompileResult sim_compiled = compile_calc(1);
    sim::Fabric fabric(3);
    fabric.add_device(driver::make_device(std::move(sim_compiled), 1));
    HostRuntime host(fabric, 1);
    host.register_spec(1, spec);
    fabric.connect(sim::host_ref(1), sim::device_ref(1));
    host.on_receive([&](const Message&, ArgValues& args) {
      sim_results.push_back(sim::encode_args(spec, args));
    });
    for (const Case& c : cases) {
      ArgValues args = sim::make_args(spec);
      args[0][0] = c.op;
      args[1][0] = c.a;
      args[2][0] = c.b;
      host.send(Message(1, 0, 1, 1), args);
    }
    fabric.run();
  }
  ASSERT_EQ(sim_results.size(), cases.size());

  // The same ops over real loopback UDP against an in-process daemon.
  SwdServer server(driver::make_device(std::move(compiled), 1), SwdOptions{});
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });

  UdpTransport::Options transport_options;
  transport_options.peer_port = server.udp_port();
  UdpTransport transport(transport_options);
  ASSERT_TRUE(transport.valid()) << transport.error();
  HostRuntime host(transport, 1);
  host.register_spec(1, spec);
  std::vector<std::vector<std::uint8_t>> udp_results;
  host.on_receive([&](const Message&, ArgValues& args) {
    udp_results.push_back(sim::encode_args(spec, args));
  });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    ArgValues args = sim::make_args(spec);
    args[0][0] = cases[i].op;
    args[1][0] = cases[i].a;
    args[2][0] = cases[i].b;
    host.send(Message(1, 0, 1, 1), args);
    // One op at a time so result order is deterministic even over UDP.
    ASSERT_TRUE(transport.run_until([&] { return udp_results.size() > i; }, 10e9))
        << "timed out waiting for op " << i;
  }
  server.stop();
  serving.join();

  // Byte-identical payloads: the daemon runs the same execution engine.
  EXPECT_EQ(udp_results, sim_results);
  EXPECT_EQ(host.received, cases.size());
  EXPECT_EQ(server.packets_received, cases.size());
  EXPECT_EQ(server.packets_sent, cases.size());
}

TEST(SwdServer, ControlPlaneThroughDeviceConnection) {
  driver::CompileOptions options;
  options.device_id = 3;
  driver::CompileResult compiled = driver::compile_netcl(R"(
    _managed_ unsigned thresh;
    _managed_ _lookup_ ncl::kv<unsigned, unsigned> cache[16];
    _kernel(1) void k(unsigned key, unsigned &v, char &hit) {
      hit = ncl::lookup(cache, key, v);
      return hit ? ncl::reflect() : ncl::drop();
    }
  )",
                                                         options);
  ASSERT_TRUE(compiled.ok) << compiled.errors;

  SwdServer server(driver::make_device(std::move(compiled), 3), SwdOptions{});
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });

  DeviceConnection connection("127.0.0.1", server.control_port());
  ASSERT_TRUE(connection.valid());
  EXPECT_EQ(connection.device_id(), 3);

  // Managed memory: the same calls DeviceConnection serves against a
  // simulated device, now over the TCP control plane.
  EXPECT_TRUE(connection.managed_write("thresh", 500));
  std::uint64_t value = 0;
  EXPECT_TRUE(connection.managed_read("thresh", value));
  EXPECT_EQ(value, 500u);
  EXPECT_FALSE(connection.managed_read("no_such_symbol", value));

  EXPECT_TRUE(connection.insert("cache", 5, 1234));
  EXPECT_TRUE(connection.remove("cache", 5));
  EXPECT_TRUE(connection.set_multicast_group(42, {1, 2}));

  const sim::DeviceStats* stats = connection.stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->control_writes, 2u);
  EXPECT_GE(stats->control_reads, 1u);

  server.stop();
  serving.join();
  EXPECT_GE(static_cast<std::uint64_t>(server.control_requests), 7u);
}

}  // namespace
}  // namespace netcl::net
