#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "apps/sources.hpp"
#include "driver/compiler.hpp"
#include "net/control.hpp"
#include "net/sim_transport.hpp"
#include "net/swd_server.hpp"
#include "net/udp_transport.hpp"
#include "net/wire.hpp"
#include "runtime/error.hpp"
#include "runtime/failure.hpp"
#include "runtime/host.hpp"
#include "runtime/host_exec.hpp"
#include "sim/fabric.hpp"

namespace netcl::net {
namespace {

using runtime::DeviceConnection;
using runtime::HostRuntime;
using runtime::Message;
using sim::ArgValues;

// --- wire format --------------------------------------------------------------

sim::Packet sample_packet() {
  sim::Packet packet;
  packet.has_netcl = true;
  packet.netcl.src = 3;
  packet.netcl.dst = 9;
  packet.netcl.from = 2;
  packet.netcl.to = 7;
  packet.netcl.comp = 5;
  packet.netcl.flags = 0xA0;
  packet.payload = {1, 2, 3, 4, 0xFF};
  packet.netcl.len = static_cast<std::uint16_t>(packet.payload.size());
  return packet;
}

TEST(Wire, PacketRoundTrip) {
  const sim::Packet packet = sample_packet();
  const std::vector<std::uint8_t> bytes = serialize_packet(packet);
  EXPECT_EQ(bytes.size(), kWireHeaderBytes + packet.payload.size());

  sim::Packet decoded;
  ASSERT_TRUE(deserialize_packet(bytes, decoded));
  EXPECT_EQ(decoded.netcl.src, packet.netcl.src);
  EXPECT_EQ(decoded.netcl.dst, packet.netcl.dst);
  EXPECT_EQ(decoded.netcl.from, packet.netcl.from);
  EXPECT_EQ(decoded.netcl.to, packet.netcl.to);
  EXPECT_EQ(decoded.netcl.comp, packet.netcl.comp);
  EXPECT_EQ(decoded.netcl.flags, packet.netcl.flags);
  EXPECT_EQ(decoded.payload, packet.payload);
}

TEST(Wire, RejectsBadMagicAndTruncation) {
  std::vector<std::uint8_t> bytes = serialize_packet(sample_packet());
  sim::Packet decoded;

  std::vector<std::uint8_t> corrupt = bytes;
  corrupt[0] = 'X';
  EXPECT_FALSE(deserialize_packet(corrupt, decoded));

  std::vector<std::uint8_t> header_cut(bytes.begin(), bytes.begin() + 8);
  EXPECT_FALSE(deserialize_packet(header_cut, decoded));

  // Header intact but the payload is shorter than the declared len.
  std::vector<std::uint8_t> payload_cut(bytes.begin(), bytes.end() - 2);
  EXPECT_FALSE(deserialize_packet(payload_cut, decoded));
}

TEST(Wire, ByteCodecRoundTrip) {
  ByteWriter writer;
  writer.u8(7);
  writer.u16(0xBEEF);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123456789ABCDEFULL);
  writer.str("thresh");
  writer.u64_vec({1, 2, 3});

  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.u8(), 7);
  EXPECT_EQ(reader.u16(), 0xBEEF);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.str(), "thresh");
  EXPECT_EQ(reader.u64_vec(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.at_end());

  reader.u64();  // over-read poisons the reader instead of faulting
  EXPECT_FALSE(reader.ok());
}

// --- UdpTransport -------------------------------------------------------------

TEST(UdpTransport, LoopbackRoundTrip) {
  UdpTransport alice;
  UdpTransport bob;
  ASSERT_TRUE(alice.valid()) << alice.error();
  ASSERT_TRUE(bob.valid()) << bob.error();
  alice.set_peer("127.0.0.1", bob.local_port());
  bob.set_peer("127.0.0.1", alice.local_port());

  sim::Packet seen;
  bool bob_got = false;
  bob.set_receiver([&](const sim::Packet& packet) {
    seen = packet;
    bob_got = true;
    sim::Packet reply = packet;
    reply.netcl.src = 9;
    bob.send(std::move(reply));
  });
  bool alice_got = false;
  alice.set_receiver([&](const sim::Packet& packet) {
    alice_got = packet.netcl.src == 9;
  });

  alice.send(sample_packet());
  ASSERT_TRUE(bob.run_until([&] { return bob_got; }, 5e9));
  EXPECT_EQ(seen.payload, sample_packet().payload);
  ASSERT_TRUE(alice.run_until([&] { return alice_got; }, 5e9));
  EXPECT_EQ(alice.packets_sent, 1u);
  EXPECT_EQ(alice.packets_received, 1u);
  EXPECT_EQ(bob.packets_received, 1u);
}

TEST(UdpTransport, TimersFireInDeadlineOrder) {
  UdpTransport transport;
  ASSERT_TRUE(transport.valid()) << transport.error();
  std::vector<int> order;
  transport.schedule(2e6, [&] { order.push_back(2); });
  transport.schedule(1e6, [&] { order.push_back(1); });
  ASSERT_TRUE(transport.run_until([&] { return order.size() == 2; }, 5e9));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(transport.timers_fired, 2u);
}

// --- SwdServer end-to-end -----------------------------------------------------

driver::CompileResult compile_calc(std::uint16_t device_id) {
  apps::AppSource app = apps::calc_source();
  driver::CompileOptions options;
  options.device_id = device_id;
  options.defines = app.defines;
  driver::CompileResult compiled = driver::compile_netcl(app.source, options);
  EXPECT_TRUE(compiled.ok) << compiled.errors;
  return compiled;
}

TEST(SwdServer, CalcMatchesSimulatedFabric) {
  driver::CompileResult compiled = compile_calc(1);
  const KernelSpec spec = compiled.specs.at(1);

  struct Case {
    std::uint64_t op, a, b;
  };
  const std::vector<Case> cases = {{apps::kCalcAdd, 20, 22},
                                   {apps::kCalcSub, 100, 58},
                                   {apps::kCalcAnd, 0xF0F0, 0xFF00},
                                   {apps::kCalcOr, 0xF0F0, 0x0F0F},
                                   {apps::kCalcXor, 0xFFFF, 0x00FF}};

  // Reference: the same ops through the simulated fabric.
  std::vector<std::vector<std::uint8_t>> sim_results;
  {
    driver::CompileResult sim_compiled = compile_calc(1);
    sim::Fabric fabric(3);
    fabric.add_device(driver::make_device(std::move(sim_compiled), 1));
    HostRuntime host(fabric, 1);
    host.register_spec(1, spec);
    fabric.connect(sim::host_ref(1), sim::device_ref(1));
    host.on_receive([&](const Message&, ArgValues& args) {
      sim_results.push_back(sim::encode_args(spec, args));
    });
    for (const Case& c : cases) {
      ArgValues args = sim::make_args(spec);
      args[0][0] = c.op;
      args[1][0] = c.a;
      args[2][0] = c.b;
      host.send(Message(1, 0, 1, 1), args);
    }
    fabric.run();
  }
  ASSERT_EQ(sim_results.size(), cases.size());

  // The same ops over real loopback UDP against an in-process daemon.
  SwdServer server(driver::make_device(std::move(compiled), 1), SwdOptions{});
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });

  UdpTransport::Options transport_options;
  transport_options.peer_port = server.udp_port();
  UdpTransport transport(transport_options);
  ASSERT_TRUE(transport.valid()) << transport.error();
  HostRuntime host(transport, 1);
  host.register_spec(1, spec);
  std::vector<std::vector<std::uint8_t>> udp_results;
  host.on_receive([&](const Message&, ArgValues& args) {
    udp_results.push_back(sim::encode_args(spec, args));
  });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    ArgValues args = sim::make_args(spec);
    args[0][0] = cases[i].op;
    args[1][0] = cases[i].a;
    args[2][0] = cases[i].b;
    host.send(Message(1, 0, 1, 1), args);
    // One op at a time so result order is deterministic even over UDP.
    ASSERT_TRUE(transport.run_until([&] { return udp_results.size() > i; }, 10e9))
        << "timed out waiting for op " << i;
  }
  server.stop();
  serving.join();

  // Byte-identical payloads: the daemon runs the same execution engine.
  EXPECT_EQ(udp_results, sim_results);
  EXPECT_EQ(host.received, cases.size());
  EXPECT_EQ(server.packets_received, cases.size());
  EXPECT_EQ(server.packets_sent, cases.size());
}

TEST(SwdServer, ControlPlaneThroughDeviceConnection) {
  driver::CompileOptions options;
  options.device_id = 3;
  driver::CompileResult compiled = driver::compile_netcl(R"(
    _managed_ unsigned thresh;
    _managed_ _lookup_ ncl::kv<unsigned, unsigned> cache[16];
    _kernel(1) void k(unsigned key, unsigned &v, char &hit) {
      hit = ncl::lookup(cache, key, v);
      return hit ? ncl::reflect() : ncl::drop();
    }
  )",
                                                         options);
  ASSERT_TRUE(compiled.ok) << compiled.errors;

  SwdServer server(driver::make_device(std::move(compiled), 3), SwdOptions{});
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });

  DeviceConnection connection("127.0.0.1", server.control_port());
  ASSERT_TRUE(connection.valid());
  EXPECT_EQ(connection.device_id(), 3);

  // Managed memory: the same calls DeviceConnection serves against a
  // simulated device, now over the TCP control plane. The typed forms
  // (ISSUE 5) distinguish "daemon refused" from transport failures.
  EXPECT_TRUE(connection.managed_write_e("thresh", 500).ok());
  std::uint64_t value = 0;
  EXPECT_TRUE(connection.managed_read_e("thresh", value).ok());
  EXPECT_EQ(value, 500u);
  const runtime::Error missing = connection.managed_read_e("no_such_symbol", value);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.kind, runtime::ErrorKind::kRejected);

  EXPECT_TRUE(connection.insert_e("cache", 5, 1234).ok());
  EXPECT_TRUE(connection.remove_e("cache", 5).ok());
  EXPECT_TRUE(connection.set_multicast_group_e(42, {1, 2}).ok());

  const sim::DeviceStats* stats = connection.stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->control_writes, 2u);
  EXPECT_GE(stats->control_reads, 1u);

  server.stop();
  serving.join();
  EXPECT_GE(static_cast<std::uint64_t>(server.control_requests), 7u);
}

// --- failure model (ISSUE 3) --------------------------------------------------

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

ControlClientOptions tight_options() {
  ControlClientOptions options;
  options.connect_timeout_ms = 250.0;
  options.request_timeout_ms = 250.0;
  options.max_retries = 1;
  options.backoff_base_ms = 5.0;
  options.backoff_max_ms = 20.0;
  return options;
}

TEST(ControlClient, ConnectToBlackholeIsBoundedByDeadline) {
  // 192.0.2.1 (TEST-NET-1) is guaranteed unrouted: SYNs either vanish
  // (bounded by connect_timeout_ms) or bounce instantly. Before ISSUE 3
  // this constructor could hang in blocking connect(2) for minutes.
  const auto start = std::chrono::steady_clock::now();
  ControlClient client("192.0.2.1", 9, tight_options());
  std::uint16_t device_id = 0;
  EXPECT_FALSE(client.ping(device_id));
  EXPECT_LT(wall_ms_since(start), 5000.0);
  EXPECT_TRUE(client.last_error());
}

TEST(ControlClient, RequestDeadlineAgainstSilentServer) {
  // A listener whose backlog completes the TCP handshake but never reads
  // or answers: the request must time out, not block forever.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listen_fd, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  const auto start = std::chrono::steady_clock::now();
  ControlClient client("127.0.0.1", ntohs(addr.sin_port), tight_options());
  std::uint16_t device_id = 0;
  EXPECT_FALSE(client.ping(device_id));
  // Two attempts (max_retries = 1) of 250 ms each plus backoff.
  EXPECT_LT(wall_ms_since(start), 5000.0);
  EXPECT_EQ(client.last_error().kind, runtime::ErrorKind::kTimeout)
      << client.last_error().to_string();
  ::close(listen_fd);
}

driver::CompileResult compile_managed(std::uint16_t device_id) {
  driver::CompileOptions options;
  options.device_id = device_id;
  driver::CompileResult compiled = driver::compile_netcl(R"(
    _managed_ unsigned thresh;
    _managed_ _lookup_ ncl::kv<unsigned, unsigned> cache[16];
    _kernel(1) void k(unsigned key, unsigned &v, char &hit) {
      hit = ncl::lookup(cache, key, v);
      return ncl::reflect();
    }
  )",
                                                         options);
  EXPECT_TRUE(compiled.ok) << compiled.errors;
  return compiled;
}

TEST(SwdServer, IdempotentRetryIsReplayedNotReexecuted) {
  SwdServer server(driver::make_device(compile_managed(3), 3), SwdOptions{});
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });

  // Raw framed client so the exact same (client id, request id) can be
  // sent twice — what a retry after a lost response looks like on the wire.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.control_port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  ByteWriter request;
  request.u64(77);  // client id
  request.u64(1);   // request id
  request.u8(static_cast<std::uint8_t>(ControlOp::kManagedWrite));
  request.str("thresh");
  request.u64_vec({});
  request.u64(123);

  std::vector<std::uint8_t> first;
  std::vector<std::uint8_t> second;
  ASSERT_TRUE(write_frame(fd, request.bytes()));
  ASSERT_TRUE(read_frame(fd, first));
  ASSERT_TRUE(write_frame(fd, request.bytes()));
  ASSERT_TRUE(read_frame(fd, second));
  EXPECT_EQ(first, second);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first[0], kControlOk);
  EXPECT_EQ(static_cast<std::uint64_t>(server.control_replays), 1u);

  ByteWriter read_request;
  read_request.u64(77);
  read_request.u64(2);
  read_request.u8(static_cast<std::uint8_t>(ControlOp::kManagedRead));
  read_request.str("thresh");
  read_request.u64_vec({});
  std::vector<std::uint8_t> response;
  ASSERT_TRUE(write_frame(fd, read_request.bytes()));
  ASSERT_TRUE(read_frame(fd, response));
  ByteReader reader(response);
  EXPECT_EQ(reader.u8(), kControlOk);
  EXPECT_EQ(reader.u64(), 123u);

  ::close(fd);
  server.stop();
  serving.join();
}

TEST(SwdServer, CrashRestartBumpsGenerationAndResyncRestoresState) {
  SwdServer server(driver::make_device(compile_managed(3), 3), SwdOptions{});
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });

  DeviceConnection connection("127.0.0.1", server.control_port(), tight_options());
  ASSERT_TRUE(connection.valid());
  runtime::PingInfo ping_before;
  ASSERT_TRUE(connection.ping(ping_before));
  const std::uint32_t generation_before = ping_before.generation;
  EXPECT_TRUE(connection.managed_write_e("thresh", 500).ok());
  EXPECT_TRUE(connection.insert_e("cache", 5, 1234).ok());
  EXPECT_TRUE(connection.set_multicast_group_e(42, {1, 2}).ok());

  // Crash: applied on the serving thread within one poll turn; from then
  // on every request fails within its deadline instead of blocking. The
  // loop terminating at all is the no-unbounded-blocking claim.
  server.inject_crash();
  const auto crash_start = std::chrono::steady_clock::now();
  std::uint64_t value = 0;
  bool request_failed = false;
  while (!request_failed && wall_ms_since(crash_start) < 5000.0) {
    request_failed = !connection.managed_read_e("thresh", value).ok();
  }
  EXPECT_TRUE(request_failed);
  EXPECT_TRUE(connection.last_error());

  // Restart: the "new process" answers again, with a bumped generation and
  // compiled-in defaults — the offloaded 500 is gone until resync.
  server.inject_restart();
  runtime::PingInfo ping_after;
  const auto restart_start = std::chrono::steady_clock::now();
  while (!connection.ping(ping_after) && wall_ms_since(restart_start) < 5000.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const std::uint32_t generation_after = ping_after.generation;
  ASSERT_NE(generation_after, 0u);
  EXPECT_NE(generation_after, generation_before);
  ASSERT_TRUE(connection.managed_read_e("thresh", value).ok());
  EXPECT_EQ(value, 0u);

  EXPECT_TRUE(connection.resync_e().ok());
  EXPECT_EQ(connection.resyncs(), 1u);
  ASSERT_TRUE(connection.managed_read_e("thresh", value).ok());
  EXPECT_EQ(value, 500u);

  server.stop();
  serving.join();
}

TEST(SwdServer, ReapsIdleControlConnections) {
  SwdOptions options;
  options.idle_timeout_seconds = 0.05;
  SwdServer server(driver::make_device(compile_managed(3), 3), options);
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });

  // A client that connects and then goes silent (died without FIN, as far
  // as the daemon can tell). The daemon must reclaim the fd.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.control_port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  const auto start = std::chrono::steady_clock::now();
  while (static_cast<std::uint64_t>(server.connections_reaped) == 0 &&
         wall_ms_since(start) < 5000.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(static_cast<std::uint64_t>(server.connections_reaped), 1u);
  ::close(fd);

  // The daemon itself is unaffected: fresh connections still served.
  DeviceConnection connection("127.0.0.1", server.control_port(), tight_options());
  EXPECT_TRUE(connection.valid());

  server.stop();
  serving.join();
}

TEST(SwdServer, HostExecuteFallbackIsByteIdenticalOverRealUdp) {
  driver::CompileResult compiled = compile_calc(1);
  const KernelSpec spec = compiled.specs.at(1);

  struct Case {
    std::uint64_t op, a, b;
  };
  const std::vector<Case> cases = {
      {apps::kCalcAdd, 20, 22},     {apps::kCalcSub, 100, 58},
      {apps::kCalcAnd, 0xF0F0, 0xFF00}, {apps::kCalcOr, 0xF0F0, 0x0F0F},
      {apps::kCalcXor, 0xFFFF, 0x00FF}, {apps::kCalcAdd, 7, 35},
      {apps::kCalcSub, 99, 57},     {apps::kCalcXor, 0x1234, 0x4321}};

  // Reference: all ops through the simulated fabric.
  std::vector<std::vector<std::uint8_t>> sim_results;
  {
    sim::Fabric fabric(3);
    fabric.add_device(driver::make_device(compile_calc(1), 1));
    HostRuntime host(fabric, 1);
    host.register_spec(1, spec);
    fabric.connect(sim::host_ref(1), sim::device_ref(1));
    host.on_receive([&](const Message&, ArgValues& args) {
      sim_results.push_back(sim::encode_args(spec, args));
    });
    for (const Case& c : cases) {
      ArgValues args = sim::make_args(spec);
      args[0][0] = c.op;
      args[1][0] = c.a;
      args[2][0] = c.b;
      host.send(Message(1, 0, 1, 1), args);
    }
    fabric.run();
  }
  ASSERT_EQ(sim_results.size(), cases.size());

  // Real run: first half over UDP against the daemon, then the daemon is
  // killed, the detector declares DOWN, and the second half host-executes.
  SwdServer server(driver::make_device(std::move(compiled), 1), SwdOptions{});
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });

  UdpTransport::Options transport_options;
  transport_options.peer_port = server.udp_port();
  UdpTransport transport(transport_options);
  ASSERT_TRUE(transport.valid()) << transport.error();

  HostRuntime host(transport, 1);
  host.register_spec(1, spec);
  std::vector<std::vector<std::uint8_t>> real_results;
  host.on_receive([&](const Message&, ArgValues& args) {
    real_results.push_back(sim::encode_args(spec, args));
  });

  DeviceConnection probe_connection("127.0.0.1", server.control_port(), tight_options());
  ASSERT_TRUE(probe_connection.valid());
  runtime::FailureDetector::Config detector_config;
  detector_config.interval_ns = 20e6;  // 20 ms of wall clock per probe
  detector_config.miss_threshold = 2;
  runtime::FailureDetector detector(
      transport,
      [&] {
        runtime::FailureDetector::ProbeResult result;
        runtime::PingInfo info;
        result.reachable = probe_connection.ping(info);
        result.generation = info.generation;
        return result;
      },
      detector_config);
  host.attach_failure_detector(detector);
  host.set_fallback_policy(runtime::FallbackPolicy::kHostExecute);
  host.set_host_executor(
      std::make_unique<runtime::HostExecutor>(driver::make_device(compile_calc(1), 1)));
  detector.start();

  const std::size_t half = cases.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    ArgValues args = sim::make_args(spec);
    args[0][0] = cases[i].op;
    args[1][0] = cases[i].a;
    args[2][0] = cases[i].b;
    host.send(Message(1, 0, 1, 1), args);
    ASSERT_TRUE(transport.run_until([&] { return real_results.size() > i; }, 10e9))
        << "timed out waiting for op " << i;
  }

  server.inject_crash();
  ASSERT_TRUE(transport.run_until([&] { return !detector.up(); }, 10e9))
      << "detector never declared the crashed daemon DOWN";

  for (std::size_t i = half; i < cases.size(); ++i) {
    ArgValues args = sim::make_args(spec);
    args[0][0] = cases[i].op;
    args[1][0] = cases[i].a;
    args[2][0] = cases[i].b;
    // Host execution loops the response back synchronously.
    host.send(Message(1, 0, 1, 1), args);
    ASSERT_EQ(real_results.size(), i + 1);
  }
  detector.stop();
  server.stop();
  serving.join();

  EXPECT_EQ(real_results, sim_results);
  EXPECT_EQ(static_cast<std::uint64_t>(host.fallback_host_executed), cases.size() - half);
}

TEST(SimTransport, PartitionedLinkDropsButNeverBlocks) {
  driver::CompileResult compiled = compile_calc(1);
  const KernelSpec spec = compiled.specs.at(1);
  sim::Fabric fabric(3);
  fabric.add_device(driver::make_device(std::move(compiled), 1));
  HostRuntime host(fabric, 1);
  host.register_spec(1, spec);
  fabric.connect(sim::host_ref(1), sim::device_ref(1));
  bool answered = false;
  host.on_receive([&](const Message&, ArgValues&) { answered = true; });

  fabric.set_link_partitioned(sim::host_ref(1), sim::device_ref(1), true);
  ArgValues args = sim::make_args(spec);
  args[0][0] = apps::kCalcAdd;
  args[1][0] = 1;
  args[2][0] = 2;
  host.send(Message(1, 0, 1, 1), args);
  fabric.run();  // terminates: the cut link drops, nothing waits forever
  EXPECT_FALSE(answered);
  EXPECT_EQ(static_cast<std::uint64_t>(fabric.packets_dropped_partition), 1u);

  // Healing the partition restores service on the same fabric.
  fabric.set_link_partitioned(sim::host_ref(1), sim::device_ref(1), false);
  host.send(Message(1, 0, 1, 1), args);
  fabric.run();
  EXPECT_TRUE(answered);
}

}  // namespace
}  // namespace netcl::net
