// Flight recorder (ISSUE 6): lock-free ring semantics, wrap accounting,
// postmortem files, recorder-off wire identity, the kFlightDump control
// op, and the partition / retry-exhaustion anomaly trails.
//
// The recorder is a deliberately leaked process singleton, so every test
// works in deltas (counts before vs after) rather than absolute sizes,
// and re-enables recording on entry in case an earlier test disabled it.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "apps/sources.hpp"
#include "driver/compiler.hpp"
#include "net/control.hpp"
#include "net/sim_transport.hpp"
#include "net/swd_server.hpp"
#include "net/wire.hpp"
#include "obs/flightrec.hpp"
#include "obs/json.hpp"
#include "runtime/failure.hpp"
#include "runtime/host.hpp"
#include "runtime/retransmit.hpp"
#include "sim/fabric.hpp"

namespace netcl {
namespace {

using obs::FlightEvent;
using obs::FlightKind;
using obs::FlightRecorder;

std::uint64_t count_kind(const std::vector<FlightEvent>& events, FlightKind kind) {
  std::uint64_t count = 0;
  for (const FlightEvent& event : events) {
    if (event.kind == static_cast<std::uint16_t>(kind)) ++count;
  }
  return count;
}

/// Unique-ish scratch path under the build tree for postmortem output.
std::string scratch_base(const std::string& tag) {
  return "flightrec_test_" + tag;
}

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

TEST(FlightRecorder, RecordsEventsInTimestampOrder) {
  FlightRecorder& recorder = FlightRecorder::instance();
  recorder.set_enabled(true);
  const std::uint64_t marker = 0xF11E57A7;
  obs::flight(FlightKind::kBatchSend, marker, 1);
  obs::flight(FlightKind::kBatchRecv, marker, 2);
  obs::flight(FlightKind::kPollCycle, marker, 3);

  const std::vector<FlightEvent> events = recorder.snapshot();
  std::vector<std::uint64_t> order;
  std::uint64_t last_ts = 0;
  for (const FlightEvent& event : events) {
    EXPECT_GE(event.ts_ns, last_ts);  // merged stream is sorted
    last_ts = event.ts_ns;
    if (event.a == marker) order.push_back(event.b);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(FlightRecorder, DisabledRecordsNothing) {
  FlightRecorder& recorder = FlightRecorder::instance();
  recorder.set_enabled(true);
  const std::uint64_t marker = 0xD15AB1ED;
  recorder.set_enabled(false);
  obs::flight(FlightKind::kBatchSend, marker, 0);
  recorder.set_enabled(true);
  std::uint64_t hits = 0;
  for (const FlightEvent& event : recorder.snapshot()) {
    if (event.a == marker) ++hits;
  }
  EXPECT_EQ(hits, 0u);
}

TEST(FlightRecorder, WrapNeverBlocksAndCountsDrops) {
  FlightRecorder& recorder = FlightRecorder::instance();
  recorder.set_enabled(true);
  (void)recorder.snapshot();  // retire this thread's unread backlog
  const std::uint64_t dropped_before = recorder.dropped_events();

  constexpr std::uint64_t kWrites = 3 * FlightRecorder::kRingCapacity;
  for (std::uint64_t i = 0; i < kWrites; ++i) {
    obs::flight(FlightKind::kQueueFlush, i, 0);
  }
  const std::vector<FlightEvent> events = recorder.snapshot();
  // Only the newest capacity's worth survives; the overwritten 2/3 are
  // accounted as drops, and at no point did the writer block or allocate.
  EXPECT_LE(count_kind(events, FlightKind::kQueueFlush), FlightRecorder::kRingCapacity);
  EXPECT_GE(recorder.dropped_events() - dropped_before,
            kWrites - FlightRecorder::kRingCapacity);

  // The newest write is present; the oldest was overwritten.
  std::uint64_t newest = 0;
  bool saw_first = false;
  for (const FlightEvent& event : events) {
    if (event.kind != static_cast<std::uint16_t>(FlightKind::kQueueFlush)) continue;
    newest = std::max(newest, event.a);
    saw_first = saw_first || event.a == 0;
  }
  EXPECT_EQ(newest, kWrites - 1);
  EXPECT_FALSE(saw_first);
}

TEST(FlightRecorder, PostmortemFilesAreValidAndMerged) {
  FlightRecorder& recorder = FlightRecorder::instance();
  recorder.set_enabled(true);
  recorder.set_process_label("test-host");
  obs::flight(FlightKind::kControlRequest, 1, 9);

  // A second stream 1000 ns behind the host clock, as align_clocks would
  // estimate it for a daemon that booted later.
  obs::FlightStream daemon;
  daemon.process = "test-daemon";
  daemon.offset_ns = 1000.0;
  FlightEvent remote{};
  remote.ts_ns = obs::flight_now_ns() - 1000;  // aligned: "now"
  remote.kind = static_cast<std::uint16_t>(FlightKind::kPollCycle);
  remote.a = 0xDAE;
  daemon.events.push_back(remote);

  const std::string base = scratch_base("postmortem");
  ASSERT_TRUE(recorder.write_postmortem(base, {daemon}));

  // JSONL: every line a valid JSON object, both processes present, merged
  // timeline sorted, and the daemon event shifted onto the host clock.
  std::ifstream jsonl(base + ".jsonl");
  ASSERT_TRUE(jsonl.is_open());
  std::string line;
  bool saw_host = false;
  bool saw_daemon = false;
  std::uint64_t lines = 0;
  while (std::getline(jsonl, line)) {
    ++lines;
    EXPECT_TRUE(obs::is_valid_json(line)) << line;
    saw_host = saw_host || line.find("\"test-host\"") != std::string::npos;
    if (line.find("\"test-daemon\"") != std::string::npos) {
      saw_daemon = true;
      const std::uint64_t aligned = remote.ts_ns + 1000;
      EXPECT_NE(line.find("\"ts_ns\":" + std::to_string(aligned)), std::string::npos)
          << line;
    }
  }
  EXPECT_GT(lines, 0u);
  EXPECT_TRUE(saw_host);
  EXPECT_TRUE(saw_daemon);

  // Chrome trace: one valid JSON document with a pid lane per process.
  const std::string trace = slurp(base + ".trace.json");
  EXPECT_TRUE(obs::is_valid_json(trace));
  EXPECT_NE(trace.find("process_name"), std::string::npos);
  EXPECT_NE(trace.find("test-daemon"), std::string::npos);
  std::remove((base + ".jsonl").c_str());
  std::remove((base + ".trace.json").c_str());
}

// --- recorder-off wire identity (golden bytes) --------------------------------

TEST(FlightRecorder, WireBytesIdenticalWithRecorderOnAndOff) {
  sim::Packet packet;
  packet.has_netcl = true;
  packet.netcl.src = 3;
  packet.netcl.to = 7;
  packet.netcl.comp = 1;
  packet.payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42};
  packet.netcl.len = static_cast<std::uint16_t>(packet.payload.size());

  FlightRecorder& recorder = FlightRecorder::instance();
  recorder.set_enabled(true);
  const std::vector<std::uint8_t> with_recorder = net::serialize_packet(packet);
  recorder.set_enabled(false);
  const std::vector<std::uint8_t> without = net::serialize_packet(packet);
  recorder.set_enabled(true);
  // The recorder observes the data plane; it must never alter the wire.
  EXPECT_EQ(with_recorder, without);
}

// --- anomaly trails -----------------------------------------------------------

TEST(FlightRecorder, PartitionLeavesOrderedHeartbeatTrail) {
  ::setenv("NETCL_FLIGHT_DIR", ".", 1);
  FlightRecorder& recorder = FlightRecorder::instance();
  recorder.set_enabled(true);
  const std::uint64_t misses_before =
      count_kind(recorder.snapshot(), FlightKind::kHeartbeatMiss);
  const std::uint64_t down_before =
      count_kind(recorder.snapshot(), FlightKind::kDeviceDown);
  const std::uint64_t dumps_before =
      recorder.dumps_written() + recorder.dumps_suppressed();

  sim::Fabric fabric;
  fabric.add_forwarding_device(1);
  net::SimTransport transport(fabric, 1);
  runtime::DeviceConnection connection(fabric, 1);
  runtime::FailureDetector::Config config;
  config.interval_ns = 1000.0;
  config.miss_threshold = 3;
  runtime::FailureDetector detector(
      transport,
      [&connection] {
        runtime::FailureDetector::ProbeResult result;
        runtime::PingInfo info;
        result.reachable = connection.ping(info);
        result.generation = info.generation;
        return result;
      },
      config);
  detector.start();
  fabric.run(2500.0);  // two healthy probes
  fabric.crash_device(1);
  fabric.run(5500.0);  // misses at 3000/4000/5000 -> DOWN
  detector.stop();
  fabric.run(20000.0);
  ASSERT_FALSE(detector.up());

  const std::vector<FlightEvent> events = recorder.snapshot();
  EXPECT_EQ(count_kind(events, FlightKind::kHeartbeatMiss) - misses_before, 3u);
  EXPECT_EQ(count_kind(events, FlightKind::kDeviceDown) - down_before, 1u);
  // The trail reads in causal order: every miss precedes the transition
  // (snapshot() sorts by timestamp, so index order is time order).
  std::int64_t last_miss = -1;
  std::int64_t down_at = -1;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == static_cast<std::uint16_t>(FlightKind::kHeartbeatMiss)) {
      last_miss = static_cast<std::int64_t>(i);
    }
    if (events[i].kind == static_cast<std::uint16_t>(FlightKind::kDeviceDown)) {
      down_at = static_cast<std::int64_t>(i);
    }
  }
  ASSERT_GE(down_at, 0);
  EXPECT_LT(last_miss, down_at);
  // The DOWN transition triggered a postmortem (written, or suppressed by
  // the rate limit if a neighboring test dumped within the last 2 s).
  EXPECT_GT(recorder.dumps_written() + recorder.dumps_suppressed(), dumps_before);
}

TEST(FlightRecorder, RetryExhaustionLeavesRetransmitTrail) {
  ::setenv("NETCL_FLIGHT_DIR", ".", 1);
  FlightRecorder& recorder = FlightRecorder::instance();
  recorder.set_enabled(true);
  const std::uint64_t retx_before =
      count_kind(recorder.snapshot(), FlightKind::kRetransmit);
  const std::uint64_t exhausted_before =
      count_kind(recorder.snapshot(), FlightKind::kRetriesExhausted);

  sim::Fabric fabric;
  net::SimTransport transport(fabric, 1);
  runtime::RetransmitWindow::Config config;
  config.chunks = 1;
  config.window = 1;
  config.retransmit_ns = 1000.0;
  config.max_retries = 2;
  runtime::RetransmitWindow window(transport, config, [](int, int, bool) {});
  window.start();
  fabric.run();  // never acknowledged: 2 retransmissions, then give_up
  ASSERT_TRUE(window.failed());

  const std::vector<FlightEvent> events = recorder.snapshot();
  EXPECT_EQ(count_kind(events, FlightKind::kRetransmit) - retx_before, 2u);
  EXPECT_EQ(count_kind(events, FlightKind::kRetriesExhausted) - exhausted_before, 1u);
}

// --- the kFlightDump control op -----------------------------------------------

driver::CompileResult compile_calc() {
  apps::AppSource app = apps::calc_source();
  driver::CompileOptions options;
  options.device_id = 1;
  options.defines = app.defines;
  driver::CompileResult compiled = driver::compile_netcl(app.source, options);
  EXPECT_TRUE(compiled.ok) << compiled.errors;
  return compiled;
}

TEST(FlightDump, ControlOpShipsClockAlignedDaemonEvents) {
  FlightRecorder::instance().set_enabled(true);
  net::SwdServer server(driver::make_device(compile_calc(), 1), net::SwdOptions{});
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });

  net::ControlClient control("127.0.0.1", server.control_port());
  // Prime the daemon's rings: the control round trips themselves record
  // events on the serving thread (kPollCycle at minimum).
  std::uint16_t device_id = 0;
  ASSERT_TRUE(control.ping(device_id));

  net::ControlClient::FlightDumpResult result;
  ASSERT_TRUE(control.flight_dump(/*window_seconds=*/0, result));
  server.stop();
  serving.join();

  EXPECT_GT(result.device_clock_now_ns, 0u);
  ASSERT_FALSE(result.events.empty());
  for (const FlightEvent& event : result.events) {
    // Device timestamps are on the daemon clock: behind its "now", and
    // far smaller than the host's raw steady_clock (which counts from
    // boot, not daemon start).
    EXPECT_LE(event.ts_ns, result.device_clock_now_ns);
  }
  EXPECT_GT(count_kind(result.events, FlightKind::kPollCycle), 0u);

  // The midpoint offset maps the daemon's "now" into the host clock's
  // request window (align_clocks bounds the error by half the RTT, which
  // here is a local TCP round trip — comfortably under a second).
  const double aligned_now =
      static_cast<double>(result.device_clock_now_ns) + result.offset_ns;
  const double host_now = static_cast<double>(obs::flight_now_ns());
  EXPECT_NEAR(aligned_now, host_now, 1e9);

  // The merged postmortem carries both processes.
  obs::FlightStream daemon;
  daemon.process = "netcl-swd";
  daemon.offset_ns = result.offset_ns;
  daemon.events = std::move(result.events);
  const std::string base = scratch_base("flightdump");
  ASSERT_TRUE(FlightRecorder::instance().write_postmortem(base, {daemon}));
  const std::string jsonl = slurp(base + ".jsonl");
  EXPECT_NE(jsonl.find("\"netcl-swd\""), std::string::npos);
  EXPECT_NE(jsonl.find("poll_cycle"), std::string::npos);
  std::remove((base + ".jsonl").c_str());
  std::remove((base + ".trace.json").c_str());
}

}  // namespace
}  // namespace netcl
