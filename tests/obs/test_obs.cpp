#include <gtest/gtest.h>

#include <string>

#include "driver/compiler.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "runtime/host.hpp"

namespace netcl::obs {
namespace {

// --- histogram bucket math ---------------------------------------------------

TEST(Histogram, BucketMath) {
  // Bucket i holds [2^i, 2^(i+1)); bucket 0 additionally absorbs [0, 1).
  EXPECT_EQ(Histogram::bucket_for(0.0), 0);
  EXPECT_EQ(Histogram::bucket_for(0.5), 0);
  EXPECT_EQ(Histogram::bucket_for(1.0), 0);
  EXPECT_EQ(Histogram::bucket_for(1.99), 0);
  EXPECT_EQ(Histogram::bucket_for(2.0), 1);
  EXPECT_EQ(Histogram::bucket_for(3.99), 1);
  EXPECT_EQ(Histogram::bucket_for(4.0), 2);
  EXPECT_EQ(Histogram::bucket_for(1024.0), 10);
  EXPECT_EQ(Histogram::bucket_for(1e30), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_for(-5.0), 0);

  EXPECT_DOUBLE_EQ(Histogram::bucket_floor(0), 0.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_floor(1), 2.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_floor(10), 1024.0);
}

TEST(Histogram, RecordAndSummaryStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.record(3.0);
  h.record(5.0);
  h.record(1000.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 1008.0);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 336.0);
}

TEST(Histogram, BucketCountsPerSample) {
  Histogram h;
  h.record(3.0);    // bucket 1: [2, 4)
  h.record(5.0);    // bucket 2: [4, 8)
  h.record(5.5);    // bucket 2
  h.record(900.0);  // bucket 9: [512, 1024)
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.bucket_count(0), 0u);
}

TEST(Histogram, PercentilesClampedToObservedRange) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(100.0);
  // All mass in one bucket: every percentile must be the observed value.
  EXPECT_DOUBLE_EQ(h.percentile(0), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
}

TEST(Histogram, PercentileOrdering) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const double p50 = h.percentile(50);
  const double p90 = h.percentile(90);
  const double p99 = h.percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  // Within a power-of-two bucket, interpolation keeps p50 near the middle.
  EXPECT_GT(p50, 256.0);
  EXPECT_LT(p50, 1000.0);
}

TEST(Histogram, QuantileMatchesPercentile) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  // percentile(p) is quantile(p/100) by definition.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), h.percentile(50));
  EXPECT_DOUBLE_EQ(h.quantile(0.99), h.percentile(99));
}

TEST(Histogram, QuantileErrorBoundedOnUniformDistribution) {
  // Uniform 1..4096: the exact q-quantile is q * 4096. Power-of-two
  // buckets put at most one octave of mass in a bucket, and linear
  // interpolation inside the bucket keeps the estimate within the
  // bucket's span — a 2x worst-case multiplicative error, much tighter
  // in practice for smooth distributions.
  Histogram h;
  for (int i = 1; i <= 4096; ++i) h.record(static_cast<double>(i));
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    const double exact = q * 4096.0;
    const double estimate = h.quantile(q);
    EXPECT_GE(estimate, exact / 2.0) << "q=" << q;
    EXPECT_LE(estimate, exact * 2.0) << "q=" << q;
    // Uniform mass fills each bucket evenly, so interpolation should land
    // within 30% of the exact answer (loose; guards regressions to a
    // bucket-upper-bound readout, which would sit at a power of two).
    EXPECT_NEAR(estimate, exact, exact * 0.3) << "q=" << q;
  }
}

TEST(Histogram, QuantileErrorBoundedOnBimodalDistribution) {
  // 90% of mass at ~10, 10% at ~1000: p50 must sit in the low mode, p99
  // in the high mode — the shape that exposes mean-based shortcuts.
  Histogram h;
  for (int i = 0; i < 900; ++i) h.record(10.0);
  for (int i = 0; i < 100; ++i) h.record(1000.0);
  EXPECT_GE(h.quantile(0.5), 8.0);
  EXPECT_LE(h.quantile(0.5), 16.0);  // within 10's bucket [8, 16)
  EXPECT_GE(h.quantile(0.95), 512.0);
  EXPECT_LE(h.quantile(0.95), 1000.0);  // clamped to observed max
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);  // no samples -> 0
  Histogram one;
  one.record(42.0);
  // A single sample answers every quantile exactly.
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 42.0);
  // Out-of-range q clamps rather than reading past the buckets.
  EXPECT_DOUBLE_EQ(one.quantile(-1.0), 42.0);
  EXPECT_DOUBLE_EQ(one.quantile(2.0), 42.0);
}

TEST(Histogram, MergeIsAdditive) {
  Histogram a;
  Histogram b;
  a.record(2.0);
  a.record(4.0);
  b.record(1024.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 1030.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 1024.0);
  EXPECT_EQ(a.bucket_count(10), 1u);
}

// --- JSON validation helper --------------------------------------------------

TEST(Json, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(is_valid_json("{}"));
  EXPECT_TRUE(is_valid_json(R"({"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":"x\n"})"));
  EXPECT_FALSE(is_valid_json(""));
  EXPECT_FALSE(is_valid_json("{"));
  EXPECT_FALSE(is_valid_json(R"({"a":1,})"));
  EXPECT_FALSE(is_valid_json("{'a':1}"));
  EXPECT_FALSE(is_valid_json("{} extra"));
}

// --- metrics registry and dump ----------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistogramsAreStable) {
  MetricsRegistry reg("test_stable");
  Counter& c = reg.counter("events");
  ++c;
  c.inc(4);
  EXPECT_EQ(reg.counter("events").value(), 5u);
  // The implicit conversion keeps pre-obs call sites compiling.
  const std::uint64_t as_int = c;
  EXPECT_EQ(as_int, 5u);
  reg.gauge("occupancy").set(42.5);
  EXPECT_DOUBLE_EQ(reg.gauge("occupancy").value(), 42.5);
  reg.histogram("lat").record(7.0);
  EXPECT_EQ(reg.histogram("lat").count(), 1u);
}

TEST(MetricsRegistry, DumpStringIsValidJson) {
  MetricsRegistry reg("test_dump");
  reg.counter("packets").inc(3);
  reg.gauge("stages").set(4);
  reg.histogram("rtt_ns").record(1500.0);
  const std::string json = dump_string();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"test_dump\""), std::string::npos);
  EXPECT_NE(json.find("\"packets\":3"), std::string::npos);
  EXPECT_NE(json.find("\"rtt_ns\""), std::string::npos);
}

TEST(MetricsRegistry, DestroyedRegistriesAreRetainedAndMerged) {
  {
    MetricsRegistry reg("test_retained");
    reg.counter("runs").inc(2);
    reg.histogram("lat").record(10.0);
  }
  {
    // Same name again: values must merge additively, not overwrite.
    MetricsRegistry reg("test_retained");
    reg.counter("runs").inc(3);
    reg.histogram("lat").record(20.0);
  }
  const std::string json = dump_string();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"runs\":5"), std::string::npos) << json;
}

// --- tracer ------------------------------------------------------------------

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer tracer;  // disabled by default
  ASSERT_FALSE(tracer.enabled());
  {
    TraceSpan span(tracer, "test", "should_not_appear");
    EXPECT_FALSE(span.active());
    span.arg("k", "v");  // must be a no-op, not a crash
  }
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Trace, EnabledTracerRecordsCompleteEvents) {
  Tracer tracer;
  tracer.enable();
  {
    TraceSpan span(tracer, "cat", "outer");
    span.arg("answer", "42");
    TraceSpan inner(tracer, "cat", "inner");
  }
  ASSERT_EQ(tracer.events().size(), 2u);
  // Inner destructs first, so it is recorded first.
  EXPECT_EQ(tracer.events()[0].name, "inner");
  EXPECT_EQ(tracer.events()[1].name, "outer");
  EXPECT_EQ(tracer.events()[1].args.size(), 1u);
  EXPECT_GE(tracer.events()[1].dur_us, tracer.events()[0].dur_us);
}

TEST(Trace, ChromeJsonIsWellFormed) {
  Tracer tracer;
  tracer.enable();
  {
    TraceSpan span(tracer, "cat", "with \"quotes\" and \\slashes\\");
    span.arg("path", "a\\b\"c");
  }
  const std::string json = tracer.to_chrome_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// --- compile report ----------------------------------------------------------

TEST(CompileReport, JsonAndTextRendering) {
  CompileReport report;
  report.ok = true;
  report.netcl_loc = 10;
  report.p4_loc = 200;
  report.stages_used = 4;
  report.add_pass("simplify", 0.001, 100, 80);
  report.add_pass("dce", 0.002, 80, 60);
  report.diagnostics.push_back("warning: something");
  EXPECT_DOUBLE_EQ(report.total_pass_seconds(), 0.003);
  EXPECT_EQ(report.passes[0].delta(), -20);
  const std::string json = report.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"simplify\""), std::string::npos);
  const std::string text = report.to_text();
  EXPECT_NE(text.find("simplify"), std::string::npos);
  EXPECT_NE(text.find("dce"), std::string::npos);
}

TEST(CompileReport, PopulatedByDriver) {
  driver::CompileOptions options;
  options.device_id = 1;
  driver::CompileResult result = driver::compile_netcl(R"(
_kernel(1) _at(1) void echo(uint32_t a, uint32_t &b) {
  b = a + 1;
  return ncl::reflect();
}
)",
                                                       options);
  ASSERT_TRUE(result.ok) << result.errors;
  EXPECT_TRUE(result.report.ok);
  EXPECT_FALSE(result.report.passes.empty());
  EXPECT_GT(result.report.stages_used, 0);
  EXPECT_TRUE(is_valid_json(result.report.to_json())) << result.report.to_json();
  // Per-pass IR sizes were filled in (the module is never empty here).
  bool saw_insts = false;
  for (const auto& pass : result.report.passes) {
    if (pass.insts_before > 0) saw_insts = true;
  }
  EXPECT_TRUE(saw_insts);
}

// --- end-to-end: deterministic counters for a round-trip workload ------------

TEST(EndToEnd, CalcRoundTripCounters) {
  driver::CompileOptions options;
  options.device_id = 1;
  driver::CompileResult compiled = driver::compile_netcl(R"(
_kernel(1) _at(1) void echo(uint32_t a, uint32_t &b) {
  b = a + 1;
  return ncl::reflect();
}
)",
                                                         options);
  ASSERT_TRUE(compiled.ok) << compiled.errors;
  const KernelSpec spec = compiled.specs.at(1);

  constexpr int kQueries = 32;
  sim::Fabric fabric;
  runtime::HostRuntime host(fabric, 1);
  host.register_spec(1, spec);
  fabric.add_device(driver::make_device(std::move(compiled), 1));
  fabric.connect(sim::host_ref(1), sim::device_ref(1));
  runtime::DeviceConnection control(fabric, 1);
  ASSERT_TRUE(control.valid());

  int answered = 0;
  host.on_receive([&](const runtime::Message&, sim::ArgValues& args) {
    EXPECT_EQ(args[1][0], static_cast<std::uint64_t>(answered) + 1);
    ++answered;
  });
  for (int i = 0; i < kQueries; ++i) {
    sim::ArgValues args = sim::make_args(spec);
    args[0][0] = static_cast<std::uint64_t>(i);
    host.send(runtime::Message(1, 2, 1, 1), args);
  }
  fabric.run();

  // N sends, N receives, zero drops anywhere.
  EXPECT_EQ(answered, kQueries);
  EXPECT_EQ(host.sent, static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(host.received, static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(host.dropped_unregistered_send, 0u);
  EXPECT_EQ(host.dropped_no_receiver, 0u);
  EXPECT_EQ(host.dropped_unknown_computation, 0u);
  EXPECT_EQ(fabric.packets_dropped_loss, 0u);
  EXPECT_EQ(fabric.packets_dropped_action, 0u);

  // Round-trip latency histogram: one sample per answered query, in
  // simulated time, so strictly positive.
  EXPECT_EQ(host.round_trip_ns.count(), static_cast<std::uint64_t>(kQueries));
  EXPECT_GT(host.round_trip_ns.min(), 0.0);
  EXPECT_EQ(host.pack_ns.count(), static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(host.unpack_ns.count(), static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(host.metrics().counter("comp1.sent").value(),
            static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(host.metrics().counter("comp1.received").value(),
            static_cast<std::uint64_t>(kQueries));

  // Device telemetry over the control plane.
  const sim::DeviceStats* stats = control.stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->packets_processed, static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(stats->kernels_executed, static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(stats->no_kernel, 0u);
  EXPECT_EQ(stats->drops_action, 0u);
  ASSERT_FALSE(stats->stage_executions.empty());
  std::uint64_t stage_total = 0;
  for (const std::uint64_t n : stats->stage_executions) stage_total += n;
  EXPECT_GT(stage_total, 0u);
}

TEST(EndToEnd, DropAccounting) {
  sim::Fabric fabric;
  runtime::HostRuntime host(fabric, 1);
  // Send with no registered spec: counted, not silently swallowed.
  host.send(runtime::Message(1, 2, 7, 1), {});
  EXPECT_EQ(host.dropped_unregistered_send, 1u);
  EXPECT_EQ(host.sent, 0u);
}

}  // namespace
}  // namespace netcl::obs
