// Sampling CPU profiler (ISSUE 9): capture and symbolization of a busy
// thread, folded-stack grammar, dump files, the SIGUSR1 latch, and the
// kProfileDump control op over a real TCP control connection.
//
// The profiler is a process singleton (like the flight recorder), so
// every test works in deltas and stops the profiler on exit.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "apps/sources.hpp"
#include "driver/compiler.hpp"
#include "net/control.hpp"
#include "net/swd_server.hpp"
#include "obs/profiler.hpp"

namespace netcl {

// External linkage + noinline so dladdr can symbolize it from the test
// binary's dynamic symbol table (executables link with
// CMAKE_ENABLE_EXPORTS) and the optimizer cannot fold it into the caller.
__attribute__((noinline)) std::uint64_t profiler_test_busy_loop(std::uint64_t rounds) {
  volatile std::uint64_t acc = 1;
  for (std::uint64_t i = 0; i < rounds; ++i) {
    acc = acc * 2862933555777941757ull + 3037000493ull;
  }
  return acc;
}

namespace {

using obs::Profiler;

/// Burns CPU on the calling thread until the profiler has captured
/// `want_samples` more samples than `baseline` (or a wall-clock deadline
/// passes — CPU-time sampling needs real cycles, not wall time).
std::uint64_t burn_until_sampled(std::uint64_t baseline, std::uint64_t want_samples) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::uint64_t sink = 0;
  while (Profiler::instance().sample_count() < baseline + want_samples &&
         std::chrono::steady_clock::now() < deadline) {
    sink += profiler_test_busy_loop(100000);
  }
  return sink;
}

/// Folded-stack grammar: every line is "frame(;frame)* count" with
/// non-empty frames, no quote or newline contamination, positive counts.
/// Collects the distinct frames seen when `out_frames` is non-null.
/// (ASSERT_* requires a void function, hence the out-parameter.)
void check_folded_grammar(const std::string& folded,
                          std::set<std::string>* out_frames = nullptr) {
  std::set<std::string> frames;
  std::istringstream lines(folded);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    const std::string count = line.substr(space + 1);
    ASSERT_GT(std::strtoull(count.c_str(), nullptr, 10), 0u) << line;
    const std::string stack = line.substr(0, space);
    std::size_t pos = 0;
    while (pos <= stack.size()) {
      std::size_t semi = stack.find(';', pos);
      if (semi == std::string::npos) semi = stack.size();
      const std::string frame = stack.substr(pos, semi - pos);
      ASSERT_FALSE(frame.empty()) << line;
      ASSERT_EQ(frame.find('"'), std::string::npos) << line;
      frames.insert(frame);
      pos = semi + 1;
    }
  }
  if (out_frames != nullptr) *out_frames = std::move(frames);
}

TEST(Profiler, CapturesAndSymbolizesBusyThread) {
  Profiler& profiler = Profiler::instance();
  obs::profile_register_thread();
  const std::uint64_t before = profiler.sample_count();
  ASSERT_TRUE(profiler.start(997));
  EXPECT_TRUE(profiler.running());
  EXPECT_EQ(profiler.hz(), 997);
  EXPECT_GE(profiler.thread_count(), 1u);

  burn_until_sampled(before, 25);
  profiler.stop();
  EXPECT_FALSE(profiler.running());
  ASSERT_GE(profiler.sample_count() - before, 25u)
      << "997 Hz CPU-time sampling captured almost nothing while spinning";

  const obs::ProfileSnapshot snapshot = profiler.snapshot();
  EXPECT_GE(snapshot.samples, 25u);
  const std::string folded = profiler.folded_string();
  ASSERT_FALSE(folded.empty());
  // The busy function dominates this thread's cycles; dladdr +
  // __cxa_demangle must render it by name.
  EXPECT_NE(folded.find("profiler_test_busy_loop"), std::string::npos) << folded;

  std::set<std::string> frames;
  ASSERT_NO_FATAL_FAILURE(check_folded_grammar(folded, &frames));
  EXPECT_GE(frames.size(), 2u) << folded;  // at least label + leaf
}

TEST(Profiler, StoppedProfilerCapturesNothing) {
  Profiler& profiler = Profiler::instance();
  profiler.stop();
  const std::uint64_t before = profiler.sample_count();
  volatile std::uint64_t sink = profiler_test_busy_loop(2000000);
  (void)sink;
  EXPECT_EQ(profiler.sample_count(), before);
}

TEST(Profiler, TriggerProfileDumpWritesFoldedFile) {
  ::setenv("NETCL_FLIGHT_DIR", ".", 1);
  Profiler& profiler = Profiler::instance();
  // Make sure the cumulative profile is non-empty even if this test runs
  // first in the binary.
  obs::profile_register_thread();
  const std::uint64_t before = profiler.sample_count();
  ASSERT_TRUE(profiler.start(997));
  burn_until_sampled(before, 5);
  profiler.stop();

  const std::uint64_t dumps_before = profiler.dumps_written();
  const std::string path = profiler.trigger_profile_dump();
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(profiler.dumps_written(), dumps_before + 1);
  std::ifstream file(path);
  ASSERT_TRUE(file.is_open()) << path;
  std::ostringstream text;
  text << file.rdbuf();
  EXPECT_FALSE(text.str().empty());
  ASSERT_NO_FATAL_FAILURE(check_folded_grammar(text.str()));
  std::remove(path.c_str());
}

TEST(Profiler, Sigusr1LatchIsConsumedExactlyOnce) {
  // Drain any latch left by an earlier test.
  (void)Profiler::consume_signal_dump();
  EXPECT_FALSE(Profiler::consume_signal_dump());
  Profiler::request_signal_dump();
  EXPECT_TRUE(Profiler::consume_signal_dump());
  EXPECT_FALSE(Profiler::consume_signal_dump());

  // The installed handler sets the same latch from a real SIGUSR1.
  Profiler::install_signal_handler();
  ASSERT_EQ(std::raise(SIGUSR1), 0);
  EXPECT_TRUE(Profiler::consume_signal_dump());
  EXPECT_FALSE(Profiler::consume_signal_dump());
}

TEST(Profiler, StartClampsRateAndIsIdempotent) {
  Profiler& profiler = Profiler::instance();
  ASSERT_TRUE(profiler.start(0));  // clamped up to 1
  EXPECT_GE(profiler.hz(), 1);
  ASSERT_TRUE(profiler.start(1000000));  // clamped down to 10000
  EXPECT_LE(profiler.hz(), 10000);
  ASSERT_TRUE(profiler.start(997));
  EXPECT_EQ(profiler.hz(), 997);
  profiler.stop();
  profiler.stop();  // double-stop is harmless
  EXPECT_FALSE(profiler.running());
}

// --- the kProfileDump control op over real TCP --------------------------------

driver::CompileResult compile_calc() {
  apps::AppSource app = apps::calc_source();
  driver::CompileOptions options;
  options.device_id = 1;
  options.defines = app.defines;
  driver::CompileResult compiled = driver::compile_netcl(app.source, options);
  EXPECT_TRUE(compiled.ok) << compiled.errors;
  return compiled;
}

TEST(ProfileDump, ControlOpOverTcpReturnsTextAndWritesFile) {
  ::setenv("NETCL_FLIGHT_DIR", ".", 1);
  net::SwdOptions options;
  options.profile_hz = 997;  // the server ctor starts the profiler
  net::SwdServer server(driver::make_device(compile_calc(), 1), options);
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });

  // The profiler samples every registered thread; the serving thread
  // registers in poll_once, and this thread registers here and burns CPU
  // so the process-wide profile is guaranteed non-empty.
  Profiler& profiler = Profiler::instance();
  obs::profile_register_thread();
  const std::uint64_t before = profiler.sample_count();
  burn_until_sampled(before, 10);

  net::ControlClient control("127.0.0.1", server.control_port());
  net::ControlClient::ProfileDumpResult result;
  ASSERT_TRUE(
      control.profile_dump(net::kProfileWriteFile | net::kProfileReturnText, result));
  server.stop();
  serving.join();
  profiler.stop();

  EXPECT_EQ(result.hz, 997u);
  EXPECT_GT(result.samples, 0u);
  EXPECT_GT(result.distinct_stacks, 0u);
  ASSERT_FALSE(result.folded.empty());
  ASSERT_NO_FATAL_FAILURE(check_folded_grammar(result.folded));
  // kProfileWriteFile also landed a .folded next to the flight dumps.
  ASSERT_FALSE(result.path.empty());
  std::ifstream file(result.path);
  ASSERT_TRUE(file.is_open()) << result.path;
  std::ostringstream text;
  text << file.rdbuf();
  EXPECT_FALSE(text.str().empty());
  std::remove(result.path.c_str());
}

TEST(ProfileDump, ControlOpWithoutFlagsReportsStateOnly) {
  net::SwdOptions options;  // profiler not started by this server
  net::SwdServer server(driver::make_device(compile_calc(), 1), options);
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });
  Profiler::instance().stop();

  net::ControlClient control("127.0.0.1", server.control_port());
  net::ControlClient::ProfileDumpResult result;
  ASSERT_TRUE(control.profile_dump(0, result));
  server.stop();
  serving.join();

  EXPECT_EQ(result.hz, 0u);  // profiler off -> hz reports 0
  EXPECT_TRUE(result.path.empty());
  EXPECT_TRUE(result.folded.empty());
}

}  // namespace
}  // namespace netcl
