// Per-tenant SLO engine (ISSUE 9): sliding-window burn-rate math, the
// multi-window alerting state machine, edge-triggered fast-burn
// callbacks, Prometheus exposition (tenant + window labels), scrapes
// racing updates, and the fast-burn -> flight-recorder postmortem wiring
// the daemon installs.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/flightrec.hpp"
#include "obs/prometheus.hpp"
#include "obs/slo.hpp"

namespace netcl::obs {
namespace {

/// Minimal exposition-grammar check: every non-comment line is
/// "name{labels} value" with a netcl_ name and a parseable value.
void check_exposition_grammar(const std::string& body) {
  std::size_t pos = 0;
  std::uint64_t samples = 0;
  while (pos < body.size()) {
    std::size_t end = body.find('\n', pos);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_EQ(line.compare(0, 6, "netcl_"), 0) << line;
    char* parsed_end = nullptr;
    std::strtod(line.c_str() + space + 1, &parsed_end);
    ASSERT_NE(parsed_end, line.c_str() + space + 1) << line;
    ++samples;
  }
  ASSERT_GT(samples, 0u);
}

/// The current value of the first series whose name starts with `prefix`
/// and contains every string in `needles`; nullopt when absent.
double series_value(const std::string& body, const std::string& prefix,
                    const std::vector<std::string>& needles, bool* found) {
  *found = false;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t end = body.find('\n', pos);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(pos, end - pos);
    pos = end + 1;
    if (line.compare(0, prefix.size(), prefix) != 0) continue;
    bool all = true;
    for (const std::string& needle : needles) {
      all = all && line.find(needle) != std::string::npos;
    }
    if (!all) continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    *found = true;
    return std::strtod(line.c_str() + space + 1, nullptr);
  }
  return 0.0;
}

// --- SloTracker ---------------------------------------------------------------

TEST(SloTracker, BurnRateIsBadFractionOverBudget) {
  SloObjective objective;
  objective.availability_target = 0.9;  // error budget 0.1
  SloTracker tracker(objective);
  const double now = 100.0;
  for (int i = 0; i < 9; ++i) tracker.record_good(now);
  tracker.record_bad(now);
  // 10% bad / 10% budget = burning at exactly the sustainable pace.
  EXPECT_NEAR(tracker.burn_rate(5.0, now), 1.0, 1e-9);
  EXPECT_NEAR(tracker.burn_rate(60.0, now), 1.0, 1e-9);
  // The events slide out of the short window.
  EXPECT_DOUBLE_EQ(tracker.burn_rate(5.0, now + 30.0), 0.0);
  // All-bad traffic burns at 1/budget.
  SloTracker flooded(objective);
  for (int i = 0; i < 50; ++i) flooded.record_bad(200.0);
  EXPECT_NEAR(flooded.burn_rate(5.0, 200.0), 10.0, 1e-9);
}

TEST(SloTracker, LatencyThresholdSplitsGoodFromBad) {
  SloObjective objective;
  objective.latency_threshold_ns = 100.0;
  objective.availability_target = 0.99;
  SloTracker tracker(objective);
  tracker.record_latency(50.0, 10.0);    // under threshold: good
  tracker.record_latency(100.0, 10.0);   // at threshold: good
  tracker.record_latency(500.0, 10.0);   // over: bad
  EXPECT_EQ(tracker.good_total(), 2u);
  EXPECT_EQ(tracker.bad_total(), 1u);
  // Without a threshold every served event is good.
  SloTracker availability_only(SloObjective{});
  availability_only.record_latency(1e12, 10.0);
  EXPECT_EQ(availability_only.good_total(), 1u);
  EXPECT_EQ(availability_only.bad_total(), 0u);
}

TEST(SloTracker, FastBurnNeedsShortAndLongWindows) {
  SloObjective objective;
  objective.availability_target = 0.999;  // all-bad burn = 1000 >> 14.4
  SloTracker tracker(objective);
  // One bad second long ago: present in the long window but not the
  // short one -> no fast burn even though the long-window burn is huge
  // (the state machine refuses to page on a single old bad batch).
  for (int i = 0; i < 10; ++i) tracker.record_bad(0.0);
  for (double t = 1.0; t <= 20.0; t += 1.0) {
    for (int i = 0; i < 10; ++i) tracker.record_good(t);
  }
  EXPECT_GE(tracker.burn_rate(SloTracker::kLongWindowS, 20.0),
            SloTracker::kFastBurnThreshold);
  EXPECT_NE(tracker.evaluate(20.0), SloState::kFastBurn);

  // A sustained flood fills both windows -> fast burn.
  SloTracker flooded(objective);
  for (double t = 0.0; t <= 10.0; t += 1.0) {
    for (int i = 0; i < 10; ++i) flooded.record_bad(t);
  }
  EXPECT_EQ(flooded.evaluate(10.0), SloState::kFastBurn);
  EXPECT_EQ(flooded.state(), SloState::kFastBurn);

  // Long-quiet traffic recovers to kOk once every window slides clear.
  for (double t = 11.0; t <= 400.0; t += 1.0) flooded.record_good(t);
  EXPECT_EQ(flooded.evaluate(400.0), SloState::kOk);
}

TEST(SloTracker, BudgetRemainingDepletesAndClamps) {
  SloObjective objective;
  objective.availability_target = 0.9;  // budget 0.1
  SloTracker tracker(objective);
  const double now = 50.0;
  EXPECT_DOUBLE_EQ(tracker.budget_remaining(now), 1.0);  // no events yet
  for (int i = 0; i < 100; ++i) tracker.record_good(now);
  EXPECT_DOUBLE_EQ(tracker.budget_remaining(now), 1.0);
  for (int i = 0; i < 5; ++i) tracker.record_bad(now);
  // 5 bad of 105 allowed budget 0.1*105 = 10.5 -> ~52% consumed.
  EXPECT_NEAR(tracker.budget_remaining(now), 1.0 - 5.0 / 10.5, 1e-9);
  for (int i = 0; i < 100; ++i) tracker.record_bad(now);
  EXPECT_DOUBLE_EQ(tracker.budget_remaining(now), 0.0);  // clamped
}

// --- SloEngine ----------------------------------------------------------------

TEST(SloEngine, RecordsOnlyTenantsWithObjectives) {
  SloEngine engine("slo_t1");
  EXPECT_TRUE(engine.empty());
  engine.record_latency(7, 10.0, 1.0);  // no objective: dropped
  SloObjective objective;
  objective.availability_target = 0.99;
  engine.set_objective(7, objective);
  EXPECT_FALSE(engine.empty());
  EXPECT_TRUE(engine.has_objective(7));
  EXPECT_FALSE(engine.has_objective(8));
  engine.record_latency(7, 10.0, 1.0);
  engine.record_latency(8, 10.0, 1.0);  // still dropped
  EXPECT_EQ(engine.good_total(7), 1u);
  EXPECT_EQ(engine.good_total(8), 0u);
  EXPECT_EQ(engine.tenants(), (std::vector<std::uint32_t>{7}));
}

TEST(SloEngine, FastBurnCallbackIsEdgeTriggered) {
  SloEngine engine("slo_t2");
  SloObjective objective;
  objective.availability_target = 0.999;
  engine.set_objective(3, objective);
  std::vector<std::pair<std::uint32_t, double>> fired;
  engine.set_fast_burn_callback(
      [&fired](std::uint32_t tenant, double burn) { fired.emplace_back(tenant, burn); });

  // A minute of sustained flood, ticked every quarter second: exactly one
  // callback despite ~240 evaluations in the burning state.
  for (double t = 0.0; t <= 60.0; t += 0.25) {
    for (int i = 0; i < 3; ++i) engine.record_bad(3, t);
    engine.tick(t);
  }
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, 3u);
  EXPECT_GE(fired[0].second, SloTracker::kFastBurnThreshold);
  EXPECT_EQ(engine.state(3), SloState::kFastBurn);
  EXPECT_EQ(engine.fast_burn_transitions(), 1u);

  // Recovery, then a second flood: a second (and only a second) callback.
  for (double t = 61.0; t <= 500.0; t += 1.0) {
    engine.record_latency(3, 1.0, t);
    engine.tick(t);
  }
  EXPECT_EQ(engine.state(3), SloState::kOk);
  for (double t = 501.0; t <= 560.0; t += 0.25) {
    for (int i = 0; i < 3; ++i) engine.record_bad(3, t);
    engine.tick(t);
  }
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(engine.fast_burn_transitions(), 2u);
}

TEST(SloEngine, PrometheusSeriesCarryTenantAndWindowLabels) {
  SloEngine engine("slo_t3");
  SloObjective objective;
  objective.latency_threshold_ns = 1000.0;
  objective.availability_target = 0.99;
  engine.set_objective(7, objective);
  // Enough good traffic that one bad event leaves budget strictly between
  // 0 and 1 (budget 0.01 * 2001 events allows ~20 bad).
  for (int i = 0; i < 2000; ++i) engine.record_latency(7, 100.0, 5.0);
  engine.record_bad(7, 5.0);
  engine.tick(5.0);

  const std::string body = prometheus_string();
  ASSERT_NO_FATAL_FAILURE(check_exposition_grammar(body));
  bool found = false;
  const double budget = series_value(
      body, "netcl_slo_budget_remaining{", {"registry=\"slo_t3\"", "tenant=\"7\""}, &found);
  ASSERT_TRUE(found) << body;
  EXPECT_GT(budget, 0.0);
  EXPECT_LE(budget, 1.0);
  for (const char* window : {"short", "long", "slow"}) {
    series_value(body, "netcl_slo_burn_rate{",
                 {"registry=\"slo_t3\"", "tenant=\"7\"",
                  "window=\"" + std::string(window) + "\""},
                 &found);
    EXPECT_TRUE(found) << "missing burn_rate window " << window;
  }
  series_value(body, "netcl_slo_objective_latency_ns{",
               {"registry=\"slo_t3\"", "tenant=\"7\""}, &found);
  EXPECT_TRUE(found);
  series_value(body, "netcl_slo_good_events_total{",
               {"registry=\"slo_t3\"", "tenant=\"7\""}, &found);
  EXPECT_TRUE(found);
  // The per-tenant latency histogram exports too (observed p99 gauge).
  series_value(body, "netcl_slo_observed_p99_ns{",
               {"registry=\"slo_t3\"", "tenant=\"7\""}, &found);
  EXPECT_TRUE(found);
}

TEST(SloEngine, ScrapeDuringConcurrentUpdateStaysWellFormed) {
  SloEngine engine("slo_t4");
  SloObjective objective;
  objective.latency_threshold_ns = 500.0;
  objective.availability_target = 0.999;
  engine.set_objective(1, objective);
  engine.set_objective(2, objective);

  std::thread writer([&engine] {
    for (int i = 0; i < 2000; ++i) {
      const double now_s = static_cast<double>(i) * 0.01;
      engine.record_latency(1, (i % 10 == 0) ? 900.0 : 100.0, now_s);
      engine.record_bad(2, now_s);
      if (i % 25 == 0) engine.tick(now_s);
    }
  });
  for (int scrape = 0; scrape < 50; ++scrape) {
    const std::string body = prometheus_string();
    ASSERT_NO_FATAL_FAILURE(check_exposition_grammar(body));
  }
  writer.join();
}

TEST(SloEngine, FloodedTenantFlipsBurnRateAndTriggersOnePostmortem) {
  ::setenv("NETCL_FLIGHT_DIR", ".", 1);
  FlightRecorder& recorder = FlightRecorder::instance();
  recorder.set_enabled(true);
  const std::uint64_t dumps_before = recorder.dumps_written() + recorder.dumps_suppressed();

  // The exact wiring SwdServer installs: fast burn leaves a flight
  // breadcrumb and requests a (rate-limited) postmortem.
  SloEngine engine("slo_t5");
  SloObjective objective;
  objective.availability_target = 0.999;
  engine.set_objective(9, objective);
  int callbacks = 0;
  std::string dump_base;
  engine.set_fast_burn_callback([&](std::uint32_t tenant, double burn) {
    ++callbacks;
    flight(FlightKind::kSloFastBurn, tenant, static_cast<std::uint64_t>(burn * 100.0));
    const std::string base = recorder.trigger_dump("slo_fast_burn");
    if (!base.empty()) dump_base = base;
  });

  // Two minutes of flood, ticked at the daemon's cadence.
  for (double t = 0.0; t <= 120.0; t += 0.25) {
    for (int i = 0; i < 3; ++i) engine.record_bad(9, t);
    engine.tick(t);
  }
  // Exactly one postmortem despite ~480 burning evaluations: the callback
  // is edge-triggered and the recorder rate-limits dumps regardless.
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(recorder.dumps_written() + recorder.dumps_suppressed() - dumps_before, 1u);

  // The scrape shows the flipped burn rate on every window.
  const std::string body = prometheus_string();
  for (const char* window : {"short", "long"}) {
    bool found = false;
    const double burn = series_value(body, "netcl_slo_burn_rate{",
                                     {"registry=\"slo_t5\"", "tenant=\"9\"",
                                      "window=\"" + std::string(window) + "\""},
                                     &found);
    ASSERT_TRUE(found) << window;
    EXPECT_GE(burn, SloTracker::kFastBurnThreshold) << window;
  }
  bool found = false;
  const double state = series_value(body, "netcl_slo_state{",
                                    {"registry=\"slo_t5\"", "tenant=\"9\""}, &found);
  ASSERT_TRUE(found);
  EXPECT_DOUBLE_EQ(state, 2.0);  // kFastBurn

  // The breadcrumb is in the rings.
  std::uint64_t breadcrumbs = 0;
  for (const FlightEvent& event : recorder.snapshot()) {
    if (event.kind == static_cast<std::uint16_t>(FlightKind::kSloFastBurn) &&
        event.a == 9) {
      ++breadcrumbs;
    }
  }
  EXPECT_EQ(breadcrumbs, 1u);
  if (!dump_base.empty()) {
    std::remove((dump_base + ".jsonl").c_str());
    std::remove((dump_base + ".trace.json").c_str());
  }
}

}  // namespace
}  // namespace netcl::obs
