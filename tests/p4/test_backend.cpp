#include <gtest/gtest.h>

#include "p4/latency.hpp"
#include "p4/p4_printer.hpp"
#include "p4/phv.hpp"
#include "p4/pipeline.hpp"
#include "p4/stage_alloc.hpp"
#include "passes/passes.hpp"
#include "../ir/ir_test_util.hpp"

namespace netcl::p4 {
namespace {

using namespace netcl::ir;
using ir::test::lower;

constexpr const char* kAllReduce = R"(
#define NUM_SLOTS 64
#define SLOT_SIZE 4
#define NUM_WORKERS 8
_net_ uint16_t Bitmap[2][NUM_SLOTS];
_net_ uint32_t Agg[SLOT_SIZE][NUM_SLOTS * 2];
_net_ uint8_t Count[NUM_SLOTS * 2];

_kernel(1) void allreduce(uint8_t ver, uint16_t bmp_idx, uint16_t agg_idx,
                          uint16_t mask, uint32_t _spec(SLOT_SIZE) *v) {
  uint16_t bitmap;
  if (ver == 0) {
    bitmap = ncl::atomic_or(&Bitmap[0][bmp_idx], mask);
    ncl::atomic_and(&Bitmap[1][bmp_idx], ~mask);
  } else {
    ncl::atomic_and(&Bitmap[0][bmp_idx], ~mask);
    bitmap = ncl::atomic_or(&Bitmap[1][bmp_idx], mask);
  }
  if (bitmap == 0) {
    for (auto i = 0; i < SLOT_SIZE; ++i)
      Agg[i][agg_idx] = v[i];
    Count[agg_idx] = NUM_WORKERS - 1;
  } else {
    auto seen = bitmap & mask;
    for (auto i = 0; i < SLOT_SIZE; ++i)
      v[i] = ncl::atomic_cond_add_new(Agg[i][agg_idx], !seen, v[i]);
    auto cnt = ncl::atomic_cond_dec(&Count[agg_idx], !seen);
    if (cnt == 0)
      return ncl::reflect();
    if (cnt == 1)
      return ncl::multicast(42);
  }
  return ncl::drop();
}
)";

std::unique_ptr<ir::test::Lowered> prepare(const std::string& source,
                                           passes::Target target = passes::Target::Tna) {
  auto r = lower(source);
  passes::PassOptions options;
  options.target = target;
  passes::run_pipeline(*r->module, options, r->diags);
  EXPECT_FALSE(r->diags.has_errors()) << r->diags.render_all();
  return r;
}

TEST(Linearize, StraightLineHasNoGuards) {
  auto r = prepare("_kernel(1) void k(unsigned x, unsigned &y) { y = x + 1; }");
  KernelProgram program = linearize(*r->module->find_function("k"), {});
  for (const LinearInst& li : program.insts) {
    if (li.inst->op() != Opcode::RetAction) {
      EXPECT_EQ(li.guard, nullptr);
    }
  }
  ASSERT_EQ(program.ret_actions().size(), 1u);
  EXPECT_EQ(program.ret_actions()[0]->guard, nullptr);
}

TEST(Linearize, BranchesBecomePredicates) {
  auto r = prepare(R"(
    _net_ unsigned m[8];
    _kernel(1) void k(unsigned x) {
      if (x > 3) { m[0] = x; }
      else { m[1] = x; }
    }
  )");
  KernelProgram program = linearize(*r->module->find_function("k"), {});
  int guarded_stores = 0;
  for (const LinearInst& li : program.insts) {
    if (li.inst->op() == Opcode::StoreGlobal) {
      EXPECT_NE(li.guard, nullptr);
      ++guarded_stores;
    }
  }
  EXPECT_EQ(guarded_stores, 2);
}

TEST(Linearize, PhiBecomesSelect) {
  auto r = prepare(R"(
    _kernel(1) void k(unsigned x, unsigned &y) {
      unsigned t;
      if (x > 3) { t = ncl::crc16(x); } else { t = ncl::crc16(x + 1); }
      y = t;
    }
  )");
  KernelProgram program = linearize(*r->module->find_function("k"), {});
  int selects = 0;
  int phis = 0;
  for (const LinearInst& li : program.insts) {
    if (li.inst->op() == Opcode::Select) ++selects;
    if (li.inst->op() == Opcode::Phi) ++phis;
  }
  EXPECT_GE(selects, 1);
  EXPECT_EQ(phis, 0);
}

TEST(Linearize, SpeculationOffGuardsPureOps) {
  auto r = prepare(R"(
    _kernel(1) void k(unsigned x, unsigned &y) {
      unsigned t = 0;
      if (x > 3) { t = x + 7; }
      y = t;
    }
  )");
  LinearizeOptions options;
  options.speculation = false;
  KernelProgram program = linearize(*r->module->find_function("k"), options);
  bool found_guarded_add = false;
  for (const LinearInst& li : program.insts) {
    if (li.synthesized) continue;
    if (li.inst->op() == Opcode::Bin && li.inst->bin_kind == BinKind::Add &&
        li.guard != nullptr) {
      found_guarded_add = true;
    }
  }
  EXPECT_TRUE(found_guarded_add);
}

TEST(StageAlloc, SimpleKernelFits) {
  auto r = prepare("_kernel(1) void k(unsigned x, unsigned &y) { y = (x + 1) * 2; }");
  std::vector<KernelProgram> kernels = linearize_module(*r->module, {});
  StageLimits limits;
  AllocationResult result = allocate_stages(kernels, *r->module, limits);
  ASSERT_TRUE(result.fits) << result.error;
  EXPECT_LE(result.stages_used, limits.stages);
  EXPECT_GE(result.stages_used, 2);  // base + dependent chain
}

TEST(StageAlloc, DependenceChainsSerialize) {
  // A chain of 6 dependent additions needs at least 6 stages after base.
  auto r = prepare(R"(
    _kernel(1) void k(unsigned x, unsigned &y) {
      unsigned a = x + 1;
      unsigned b = a + 1;
      unsigned c = b + 1;
      unsigned d = c + 1;
      unsigned e = d + 1;
      y = e + 1;
    }
  )");
  std::vector<KernelProgram> kernels = linearize_module(*r->module, {});
  StageLimits limits;
  AllocationResult result = allocate_stages(kernels, *r->module, limits);
  ASSERT_TRUE(result.fits) << result.error;
  EXPECT_GE(result.stages_used, 7);
}

TEST(StageAlloc, RegisterAccessesShareOneStage) {
  auto r = prepare(R"(
    _net_ unsigned m[64];
    _kernel(1) void k(unsigned x, unsigned &y) {
      if (x > 3) { y = ncl::atomic_add_new(&m[x & 63], 1); }
      else { y = ncl::atomic_sub_new(&m[x & 31], 1); }
    }
  )");
  std::vector<KernelProgram> kernels = linearize_module(*r->module, {});
  StageLimits limits;
  AllocationResult result = allocate_stages(kernels, *r->module, limits);
  ASSERT_TRUE(result.fits) << result.error;
  const GlobalVar* m = r->module->find_global("m");
  ASSERT_NE(m, nullptr);
  const int stage = result.global_stage.at(m);
  for (const KernelProgram& kernel : kernels) {
    for (const LinearInst& li : kernel.insts) {
      if (li.inst->global == m) {
        EXPECT_EQ(li.stage, stage);
      }
    }
  }
}

TEST(StageAlloc, TooLongChainRejected) {
  // 16 dependent additions cannot fit 12 stages.
  std::string body;
  std::string prev = "x";
  for (int i = 0; i < 16; ++i) {
    body += "unsigned t";
    body += std::to_string(i);
    body += " = ";
    body += prev;
    body += " + ";
    body += prev;
    body += ";\n";
    prev = "t";
    prev += std::to_string(i);
  }
  // Built up in steps: the one-expression concatenation trips a GCC 12
  // -Wrestrict false positive under -Werror.
  std::string source = "_kernel(1) void k(unsigned x, unsigned &y) {\n";
  source += body;
  source += "y = " + prev + ";\n}";
  auto r = prepare(source);
  std::vector<KernelProgram> kernels = linearize_module(*r->module, {});
  StageLimits limits;
  AllocationResult result = allocate_stages(kernels, *r->module, limits);
  EXPECT_FALSE(result.fits);
  EXPECT_NE(result.error.find("stages"), std::string::npos);
}

TEST(StageAlloc, AllReduceFitsTofino) {
  auto r = prepare(kAllReduce);
  std::vector<KernelProgram> kernels = linearize_module(*r->module, {});
  StageLimits limits;
  AllocationResult result = allocate_stages(kernels, *r->module, limits);
  ASSERT_TRUE(result.fits) << result.error;
  EXPECT_LE(result.stages_used, 12);
  // AllReduce needs SALUs for Bitmap/Agg/Count registers.
  EXPECT_GE(result.total.salus, 7);
  EXPECT_EQ(result.total.tcam, 0);  // conditions run in SALUs, not TCAM
}

TEST(StageAlloc, SpeculationReducesStages) {
  // With speculation off, pure ops wait for their block predicate, which
  // lengthens the dependence chain.
  auto r = prepare(R"(
    _net_ unsigned m[8];
    _kernel(1) void k(unsigned x, unsigned &y) {
      if (x > 1) {
        if (x > 2) {
          if (x > 3) {
            unsigned t = (x + 1) * 2;
            y = ncl::atomic_add_new(&m[t & 7], 1);
          }
        }
      }
    }
  )");
  StageLimits limits;
  LinearizeOptions fast;
  fast.speculation = true;
  std::vector<KernelProgram> with = linearize_module(*r->module, fast);
  AllocationResult result_with = allocate_stages(with, *r->module, limits);
  ASSERT_TRUE(result_with.fits) << result_with.error;

  auto r2 = prepare(R"(
    _net_ unsigned m[8];
    _kernel(1) void k(unsigned x, unsigned &y) {
      if (x > 1) {
        if (x > 2) {
          if (x > 3) {
            unsigned t = (x + 1) * 2;
            y = ncl::atomic_add_new(&m[t & 7], 1);
          }
        }
      }
    }
  )");
  LinearizeOptions slow;
  slow.speculation = false;
  std::vector<KernelProgram> without = linearize_module(*r2->module, slow);
  // Compare against a deeper hypothetical pipeline so the no-speculation
  // version still "fits" and reports its stage count (on real Tofino it
  // would simply be rejected, which is the paper's point).
  StageLimits deep = limits;
  deep.stages = 24;
  AllocationResult result_without = allocate_stages(without, *r2->module, deep);
  ASSERT_TRUE(result_without.fits) << result_without.error;
  EXPECT_LT(result_with.stages_used, result_without.stages_used);
}

TEST(Latency, MonotoneInStages) {
  LatencyModel model;
  double previous = 0;
  for (int stages = 1; stages <= 12; ++stages) {
    const double ns = model.worst_case_ns(stages);
    EXPECT_GT(ns, previous);
    previous = ns;
  }
  // The paper: total latency is well below 1 microsecond.
  EXPECT_LT(model.worst_case_ns(12), 1000.0);
  EXPECT_GT(model.worst_case_ns(1), 100.0);
}

TEST(Phv, CountsHeadersAndTemporaries) {
  auto r = prepare(kAllReduce);
  std::vector<KernelProgram> kernels = linearize_module(*r->module, {});
  StageLimits limits;
  AllocationResult result = allocate_stages(kernels, *r->module, limits);
  ASSERT_TRUE(result.fits) << result.error;
  const PhvUsage usage = compute_phv(kernels);
  // 8 + 16 + 16 + 16 + 4*32 = 184 bits of kernel arguments.
  EXPECT_EQ(usage.header_bits, 184);
  EXPECT_EQ(usage.netcl_header_bits, kNetclHeaderBits);
  EXPECT_GT(usage.local_var_bits, 0);
  EXPECT_GT(usage.occupancy_pct(limits), 10.0);
  EXPECT_LT(usage.occupancy_pct(limits), 60.0);
}

TEST(P4Printer, TnaOutputHasAllSections) {
  auto r = prepare(R"(
    _net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42},{2,42}};
    _net_ unsigned hits;
    _kernel(1) void query(unsigned k, unsigned &v, char &hit) {
      hit = ncl::lookup(cache, k, v);
      if (hit) { ncl::atomic_inc(&hits); return ncl::reflect(); }
    }
  )");
  const P4Program program = emit_p4(*r->module, P4Dialect::Tna);
  const std::string text = program.full();
  EXPECT_NE(text.find("#include <tna.p4>"), std::string::npos);
  EXPECT_NE(text.find("header netcl_t"), std::string::npos);
  EXPECT_NE(text.find("Register<"), std::string::npos);
  EXPECT_NE(text.find("RegisterAction<"), std::string::npos);
  EXPECT_NE(text.find("table t_cache"), std::string::npos);
  EXPECT_NE(text.find("const entries"), std::string::npos);
  EXPECT_NE(text.find("parser NetCLParser"), std::string::npos);
  EXPECT_NE(text.find("// reflect"), std::string::npos);
  EXPECT_GT(program.loc(), 50);
  EXPECT_GT(program.generated_loc(), 5);
  EXPECT_LT(program.generated_loc(), program.loc());
}

TEST(P4Printer, V1ModelUsesV1Primitives) {
  auto r = prepare(R"(
    _net_ unsigned c[16];
    _kernel(1) void k(unsigned x, unsigned &y) { y = ncl::atomic_add_new(&c[x & 15], 1); }
  )",
                   passes::Target::V1Model);
  const P4Program program = emit_p4(*r->module, P4Dialect::V1Model);
  const std::string text = program.full();
  EXPECT_NE(text.find("#include <v1model.p4>"), std::string::npos);
  EXPECT_NE(text.find("register<"), std::string::npos);
  EXPECT_NE(text.find(".read("), std::string::npos);
  EXPECT_NE(text.find(".write("), std::string::npos);
  EXPECT_EQ(text.find("RegisterAction"), std::string::npos);
}

TEST(P4Printer, StructuredControlFlow) {
  auto r = prepare(R"(
    _net_ unsigned m[8];
    _kernel(1) void k(unsigned x, unsigned &y) {
      if (x > 3) { m[0] = x; y = 1; }
      else { m[1] = x; y = 2; }
    }
  )");
  const P4Program program = emit_p4(*r->module, P4Dialect::Tna);
  EXPECT_NE(program.control.find("if ("), std::string::npos) << program.control;
  EXPECT_NE(program.control.find("} else {"), std::string::npos) << program.control;
}

TEST(P4Printer, AllReduceEmits) {
  auto r = prepare(kAllReduce);
  const P4Program program = emit_p4(*r->module, P4Dialect::Tna);
  // The partitioned registers all appear.
  for (const char* name : {"Agg$0", "Agg$3", "Bitmap$0", "Bitmap$1", "Count"}) {
    EXPECT_NE(program.registers.find(name), std::string::npos) << name;
  }
  EXPECT_GT(program.loc(), 150);
}

}  // namespace
}  // namespace netcl::p4
