#include <gtest/gtest.h>

#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "passes/passes.hpp"
#include "../ir/ir_test_util.hpp"

namespace netcl::passes {
namespace {

using namespace netcl::ir;
using ir::test::lower;

int count_ops(const Function& fn, Opcode op) {
  int count = 0;
  for (const auto& block : fn.blocks()) {
    for (const auto& inst : block->instructions()) {
      if (inst->op() == op) ++count;
    }
  }
  return count;
}

void run_cleanup(Function& fn, Module& module) {
  for (int i = 0; i < 8; ++i) {
    bool changed = simplify(fn, module);
    changed |= dce(fn);
    if (!changed) break;
  }
}

TEST(Simplify, ConstantFolding) {
  auto r = lower("_kernel(1) void k(unsigned &y) { y = (2 + 3) * 4; }");
  Function* fn = r->module->find_function("k");
  run_cleanup(*fn, *r->module);
  EXPECT_EQ(count_ops(*fn, Opcode::Bin), 0);
  const std::string text = print(*fn);
  EXPECT_NE(text.find("20:"), std::string::npos) << text;
}

TEST(Simplify, PeepholeIdentities) {
  auto r = lower(R"(
    _kernel(1) void k(unsigned x, unsigned &y) {
      y = ((x + 0) * 1) | 0;
      y = y ^ 0;
    }
  )");
  Function* fn = r->module->find_function("k");
  run_cleanup(*fn, *r->module);
  EXPECT_EQ(count_ops(*fn, Opcode::Bin), 0) << print(*fn);
}

TEST(Simplify, ConstantBranchFolding) {
  auto r = lower(R"(
    _kernel(1) void k(unsigned x, unsigned &y) {
      if (1 < 2) { y = 1; } else { y = 2; }
    }
  )");
  Function* fn = r->module->find_function("k");
  run_cleanup(*fn, *r->module);
  EXPECT_EQ(fn->blocks().size(), 1u) << print(*fn);
  EXPECT_EQ(count_ops(*fn, Opcode::Phi), 0);
  const std::string text = print(*fn);
  EXPECT_NE(text.find("store.msg arg1 0:u16, 1:"), std::string::npos) << text;
}

TEST(Simplify, SelectFolding) {
  auto r = lower("_kernel(1) void k(unsigned x, unsigned &y) { y = x > 2 ? x : x; }");
  Function* fn = r->module->find_function("k");
  run_cleanup(*fn, *r->module);
  EXPECT_EQ(count_ops(*fn, Opcode::Select), 0) << print(*fn);
}

TEST(Simplify, BlockMergeAfterFolding) {
  auto r = lower(R"(
    _kernel(1) void k(unsigned x, unsigned &y) {
      unsigned t = 0;
      if (x > 1) { t = 1; }
      if (0) { t = 9; }
      y = t;
    }
  )");
  Function* fn = r->module->find_function("k");
  run_cleanup(*fn, *r->module);
  EXPECT_TRUE(verify(*fn).empty()) << print(*fn);
  // The constant-false branch disappears entirely.
  const std::string text = print(*fn);
  EXPECT_EQ(text.find("9:"), std::string::npos) << text;
}

TEST(Dce, RemovesDeadArithmetic) {
  auto r = lower(R"(
    _kernel(1) void k(unsigned x, unsigned &y) {
      unsigned dead = x * 2 + 7;
      y = x;
    }
  )");
  Function* fn = r->module->find_function("k");
  dce(*fn);
  EXPECT_EQ(count_ops(*fn, Opcode::Bin), 0) << print(*fn);
}

TEST(Dce, KeepsAtomics) {
  auto r = lower(R"(
    _net_ unsigned c;
    _kernel(1) void k(unsigned x) { ncl::atomic_add(&c, x); }
  )");
  Function* fn = r->module->find_function("k");
  dce(*fn);
  EXPECT_EQ(count_ops(*fn, Opcode::AtomicRMW), 1);
}

TEST(Sroa, PromotesConstantIndexedArray) {
  auto r = lower(R"(
    _kernel(1) void k(unsigned x, unsigned &y) {
      unsigned c[3];
      c[0] = x;
      c[1] = x + 1;
      c[2] = x + 2;
      y = c[0] + c[1] + c[2];
    }
  )");
  Function* fn = r->module->find_function("k");
  EXPECT_TRUE(sroa(*fn, *r->module));
  EXPECT_TRUE(fn->local_arrays().empty());
  EXPECT_EQ(count_ops(*fn, Opcode::LoadLocal), 0);
  EXPECT_EQ(count_ops(*fn, Opcode::StoreLocal), 0);
  EXPECT_TRUE(verify(*fn).empty()) << print(*fn);
}

TEST(Sroa, PromotionAcrossControlFlowInsertsPhis) {
  auto r = lower(R"(
    _kernel(1) void k(unsigned x, unsigned &y) {
      unsigned c[2];
      c[0] = 1;
      if (x > 5) { c[0] = 2; }
      y = c[0];
    }
  )");
  Function* fn = r->module->find_function("k");
  EXPECT_TRUE(sroa(*fn, *r->module));
  EXPECT_GE(count_ops(*fn, Opcode::Phi), 1);
  EXPECT_TRUE(verify(*fn).empty()) << print(*fn);
}

TEST(Sroa, DynamicIndexSurvives) {
  auto r = lower(R"(
    _kernel(1) void k(unsigned x, unsigned &y) {
      unsigned c[4];
      c[x & 3] = 1;
      y = c[0];
    }
  )");
  Function* fn = r->module->find_function("k");
  EXPECT_FALSE(sroa(*fn, *r->module));
  EXPECT_EQ(fn->local_arrays().size(), 1u);
}

// Figure 4's sketch: after unrolling+SROA, the CMS min-computation becomes
// pure SSA arithmetic.
TEST(Sroa, Figure4SketchFullyPromotes) {
  auto r = lower(R"(
#define CMS_HASHES 3
#define THRESH 128
_managed_ unsigned cms[CMS_HASHES][65536];
_net_ void sketch(unsigned k, unsigned &hot) {
  unsigned c[CMS_HASHES];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k)], 1);
  for (auto i = 1; i < CMS_HASHES; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  hot = c[0] > THRESH ? c[0] : 0;
}
_kernel(1) void query(unsigned k, unsigned &hot) { sketch(k, hot); }
)");
  Function* fn = r->module->find_function("query");
  run_cleanup(*fn, *r->module);
  EXPECT_TRUE(sroa(*fn, *r->module));
  run_cleanup(*fn, *r->module);
  EXPECT_TRUE(fn->local_arrays().empty());
  EXPECT_EQ(count_ops(*fn, Opcode::AtomicRMW), 3);
  EXPECT_TRUE(verify(*fn).empty()) << print(*fn);
}

TEST(Hoist, MergesCommonComputation) {
  auto r = lower(R"(
    _kernel(1) void k(unsigned x, unsigned &y) {
      unsigned t;
      if (x > 5) { t = x * 2; } else { t = x * 2 + 1; }
      y = t;
    }
  )");
  Function* fn = r->module->find_function("k");
  run_cleanup(*fn, *r->module);
  PassOptions options;
  EXPECT_TRUE(hoist(*fn, options));
  // Only one multiply remains, and it lives in the entry block.
  int muls = 0;
  for (const auto& inst : fn->entry()->instructions()) {
    if (inst->op() == Opcode::Bin && inst->bin_kind == BinKind::Shl) ++muls;  // not yet lowered
    if (inst->op() == Opcode::Bin && inst->bin_kind == BinKind::Mul) ++muls;
  }
  EXPECT_EQ(muls, 1) << print(*fn);
  EXPECT_EQ(count_ops(*fn, Opcode::Bin), 2);  // one mul + one add
  EXPECT_TRUE(verify(*fn).empty()) << print(*fn);
}

TEST(Hoist, DisabledByOption) {
  auto r = lower(R"(
    _kernel(1) void k(unsigned x, unsigned &y) {
      unsigned t;
      if (x > 5) { t = x * 2; } else { t = x * 2 + 1; }
      y = t;
    }
  )");
  Function* fn = r->module->find_function("k");
  run_cleanup(*fn, *r->module);
  PassOptions options;
  options.hoisting = false;
  EXPECT_FALSE(hoist(*fn, options));
}

TEST(LowerPatterns, MulByPow2BecomesShift) {
  auto r = lower("_kernel(1) void k(unsigned x, unsigned &y) { y = x * 8; }");
  PassOptions options;
  lower_patterns(*r->module, options, r->diags);
  EXPECT_FALSE(r->diags.has_errors());
  Function* fn = r->module->find_function("k");
  bool found_shift = false;
  for (const auto& inst : fn->entry()->instructions()) {
    if (inst->op() == Opcode::Bin) {
      EXPECT_EQ(inst->bin_kind, BinKind::Shl);
      found_shift = true;
    }
  }
  EXPECT_TRUE(found_shift);
}

TEST(LowerPatterns, DivAndRemByPow2) {
  auto r = lower("_kernel(1) void k(unsigned x, unsigned &y) { y = x / 16 + x % 4; }");
  PassOptions options;
  lower_patterns(*r->module, options, r->diags);
  EXPECT_FALSE(r->diags.has_errors());
  Function* fn = r->module->find_function("k");
  int shifts = 0;
  int ands = 0;
  for (const auto& inst : fn->entry()->instructions()) {
    if (inst->op() == Opcode::Bin && inst->bin_kind == BinKind::LShr) ++shifts;
    if (inst->op() == Opcode::Bin && inst->bin_kind == BinKind::And) ++ands;
  }
  EXPECT_EQ(shifts, 1);
  EXPECT_EQ(ands, 1);
}

TEST(LowerPatterns, NonPow2MulRejectedOnTna) {
  auto r = lower("_kernel(1) void k(unsigned x, unsigned &y) { y = x * 6; }");
  PassOptions options;
  lower_patterns(*r->module, options, r->diags);
  EXPECT_TRUE(r->diags.contains_error("cannot be converted to shifts"));
}

TEST(LowerPatterns, DynamicMulRejectedOnTna) {
  auto r = lower("_kernel(1) void k(unsigned x, unsigned z, unsigned &y) { y = x * z; }");
  PassOptions options;
  lower_patterns(*r->module, options, r->diags);
  EXPECT_TRUE(r->diags.contains_error("dynamic operand"));
}

TEST(LowerPatterns, V1ModelAcceptsAnything) {
  auto r = lower("_kernel(1) void k(unsigned x, unsigned z, unsigned &y) { y = x * z; }");
  PassOptions options;
  options.target = Target::V1Model;
  lower_patterns(*r->module, options, r->diags);
  EXPECT_FALSE(r->diags.has_errors());
}

TEST(LowerPatterns, DynamicRelationalIcmpBecomesSubMsb) {
  auto r = lower("_kernel(1) void k(unsigned a, unsigned b, unsigned &y) { y = a < b ? 1 : 0; }");
  Function* fn = r->module->find_function("k");
  PassOptions options;
  lower_patterns(*r->module, options, r->diags);
  EXPECT_FALSE(r->diags.has_errors());
  // The comparison becomes a subtraction plus an MSB check: an unsigned
  // range comparison of the difference against 2^(W-1), which the stage
  // gateway evaluates as a constant match.
  bool has_sub = false;
  bool dynamic_relational_left = false;
  bool msb_check = false;
  for (const auto& inst : fn->entry()->instructions()) {
    if (inst->op() == Opcode::Bin && inst->bin_kind == BinKind::Sub) has_sub = true;
    if (inst->op() == Opcode::ICmp && inst->icmp_pred != ICmpPred::EQ &&
        inst->icmp_pred != ICmpPred::NE) {
      const Constant* rhs = as_constant(inst->operand(1));
      if (rhs == nullptr) {
        dynamic_relational_left = true;
      } else if (rhs->value() == 1ULL << 63) {
        msb_check = true;  // widened to 64 bits; MSB is bit 63
      }
    }
  }
  EXPECT_TRUE(has_sub) << print(*fn);
  EXPECT_TRUE(msb_check) << print(*fn);
  EXPECT_FALSE(dynamic_relational_left) << print(*fn);
}

TEST(LowerPatterns, ConstantComparisonUntouched) {
  auto r = lower("_kernel(1) void k(unsigned a, unsigned &y) { y = a > 10 ? 1 : 0; }");
  Function* fn = r->module->find_function("k");
  PassOptions options;
  lower_patterns(*r->module, options, r->diags);
  bool has_ugt = false;
  for (const auto& inst : fn->entry()->instructions()) {
    if (inst->op() == Opcode::ICmp && inst->icmp_pred == ICmpPred::UGT) has_ugt = true;
  }
  EXPECT_TRUE(has_ugt);
}

// --- mem_legality ------------------------------------------------------------

// The paper's §V-D example: mutually exclusive accesses are valid, two
// accesses on one path are not.
TEST(MemLegality, MutuallyExclusiveAccessesValid) {
  auto r = lower(R"(
    _net_ int m[42];
    _kernel(1) void b(int x, int &y) { y = (x > 10) ? m[0] : m[1]; }
  )");
  PassOptions options;
  mem_legality(*r->module, options, r->diags);
  EXPECT_FALSE(r->diags.has_errors()) << r->diags.render_all();
}

TEST(MemLegality, SamePathAccessesRejected) {
  auto r = lower(R"(
    _net_ int m[42];
    _kernel(2) void a(int x, int &y) { y = m[0] + m[1]; }
  )");
  PassOptions options;
  mem_legality(*r->module, options, r->diags);
  EXPECT_TRUE(r->diags.contains_error("accessed more than once on a single path"));
}

// The paper's ordering example: reorderable conflicting orders are fine...
TEST(MemLegality, ReorderableConflictAccepted) {
  auto r = lower(R"(
    _net_ int m1[42], m2[42];
    _kernel(2) void b(int x, int &y) {
      if (x > 10) { y = m1[0] + m2[1]; }
      else        { y = m2[1] + m1[0]; }
    }
  )");
  PassOptions options;
  mem_legality(*r->module, options, r->diags);
  EXPECT_FALSE(r->diags.has_errors()) << r->diags.render_all();
}

// ...but dependent accesses in conflicting orders are rejected.
TEST(MemLegality, DependentConflictRejected) {
  auto r = lower(R"(
    _net_ int m1[42], m2[42];
    _kernel(1) void a(int x, int &y) {
      int t;
      if (x > 10) { t = m1[0]; t = m2[t & 31]; }
      else        { t = m2[0]; t = m1[t & 31]; }
      y = t;
    }
  )");
  PassOptions options;
  mem_legality(*r->module, options, r->diags);
  EXPECT_TRUE(r->diags.contains_error("different orders")) << r->diags.render_all();
}

TEST(MemLegality, PartitioningSplitsConstantOuterDim) {
  auto r = lower(R"(
    _net_ unsigned m[3][64];
    _kernel(1) void k(unsigned x, unsigned &y) {
      ncl::atomic_add(&m[0][x & 63], 1);
      ncl::atomic_add(&m[1][x & 63], 1);
      y = ncl::atomic_add_new(&m[2][x & 63], 1);
    }
  )");
  PassOptions options;
  mem_legality(*r->module, options, r->diags);
  EXPECT_FALSE(r->diags.has_errors()) << r->diags.render_all();
  EXPECT_EQ(r->module->find_global("m"), nullptr);
  EXPECT_NE(r->module->find_global("m$0"), nullptr);
  EXPECT_NE(r->module->find_global("m$2"), nullptr);
}

TEST(MemLegality, PartitioningDisabledRejectsProgram) {
  auto r = lower(R"(
    _net_ unsigned m[3][64];
    _kernel(1) void k(unsigned x, unsigned &y) {
      ncl::atomic_add(&m[0][x & 63], 1);
      ncl::atomic_add(&m[1][x & 63], 1);
      y = ncl::atomic_add_new(&m[2][x & 63], 1);
    }
  )");
  PassOptions options;
  options.partitioning = false;
  mem_legality(*r->module, options, r->diags);
  EXPECT_TRUE(r->diags.contains_error("accessed more than once on a single path"));
}

TEST(MemLegality, LookupDuplication) {
  auto r = lower(R"(
    _net_ _lookup_ ncl::kv<unsigned, unsigned> t[] = {{1,2},{3,4}};
    _kernel(1) void k(unsigned a, unsigned b, unsigned &x, unsigned &y) {
      ncl::lookup(t, a, x);
      ncl::lookup(t, b, y);
    }
  )");
  PassOptions options;
  mem_legality(*r->module, options, r->diags);
  EXPECT_FALSE(r->diags.has_errors()) << r->diags.render_all();
  EXPECT_NE(r->module->find_global("t$dup1"), nullptr);
}

TEST(MemLegality, ManagedLookupNotDuplicated) {
  auto r = lower(R"(
    _managed_ _lookup_ ncl::kv<unsigned, unsigned> t[] = {{1,2},{3,4}};
    _kernel(1) void k(unsigned a, unsigned b, unsigned &x, unsigned &y) {
      ncl::lookup(t, a, x);
      ncl::lookup(t, b, y);
    }
  )");
  PassOptions options;
  mem_legality(*r->module, options, r->diags);
  // Duplication is not available for managed lookup memory, so the two
  // same-path lookups violate stage locality.
  EXPECT_TRUE(r->diags.contains_error("accessed more than once on a single path"));
}

TEST(MemLegality, V1ModelSkipsChecks) {
  auto r = lower(R"(
    _net_ int m[42];
    _kernel(2) void a(int x, int &y) { y = m[0] + m[1]; }
  )");
  PassOptions options;
  options.target = Target::V1Model;
  mem_legality(*r->module, options, r->diags);
  EXPECT_FALSE(r->diags.has_errors());
}

// Full pipeline over the paper's Figure 7 AllReduce: partitioning makes the
// unrolled Agg accesses legal and the kernel passes every check.
TEST(Pipeline, Figure7AllReduceLegalOnTna) {
  auto r = lower(R"(
#define NUM_SLOTS 64
#define SLOT_SIZE 4
#define NUM_WORKERS 8
_net_ uint16_t Bitmap[2][NUM_SLOTS];
_net_ uint32_t Agg[SLOT_SIZE][NUM_SLOTS * 2];
_net_ uint8_t Count[NUM_SLOTS * 2];

_kernel(1) void allreduce(uint8_t ver, uint16_t bmp_idx, uint16_t agg_idx,
                          uint16_t mask, uint32_t _spec(SLOT_SIZE) *v) {
  uint16_t bitmap;
  if (ver == 0) {
    bitmap = ncl::atomic_or(&Bitmap[0][bmp_idx], mask);
    ncl::atomic_and(&Bitmap[1][bmp_idx], ~mask);
  } else {
    ncl::atomic_and(&Bitmap[0][bmp_idx], ~mask);
    bitmap = ncl::atomic_or(&Bitmap[1][bmp_idx], mask);
  }
  if (bitmap == 0) {
    for (auto i = 0; i < SLOT_SIZE; ++i)
      Agg[i][agg_idx] = v[i];
    Count[agg_idx] = NUM_WORKERS - 1;
  } else {
    auto seen = bitmap & mask;
    for (auto i = 0; i < SLOT_SIZE; ++i)
      v[i] = ncl::atomic_cond_add_new(Agg[i][agg_idx], !seen, v[i]);
    auto cnt = ncl::atomic_cond_dec(&Count[agg_idx], !seen);
    if (cnt == 0)
      return ncl::reflect();
    if (cnt == 1)
      return ncl::multicast(42);
  }
  return ncl::drop();
}
)");
  PassOptions options;
  run_pipeline(*r->module, options, r->diags);
  EXPECT_FALSE(r->diags.has_errors()) << r->diags.render_all();
  // Agg and Bitmap were partitioned.
  EXPECT_NE(r->module->find_global("Agg$0"), nullptr);
  EXPECT_NE(r->module->find_global("Bitmap$1"), nullptr);
  Function* fn = r->module->find_function("allreduce");
  EXPECT_TRUE(verify(*fn).empty()) << print(*fn);
}

}  // namespace
}  // namespace netcl::passes
