// Property-based sweeps (parameterized gtest).
//
// The central property: for any generated kernel, *executing the compiled,
// linearized, stage-allocated pipeline in the switch simulator produces the
// same values as evaluating the source semantics on the host*. Differential
// testing across random expression trees, widths and control flow catches
// disagreements anywhere in the stack (folding, lowering, legalization,
// predication, interpretation).
#include <gtest/gtest.h>

#include "apps/sources.hpp"
#include "driver/compiler.hpp"
#include "ir/eval.hpp"
#include "support/hashes.hpp"

namespace netcl {
namespace {

using driver::CompileOptions;
using driver::CompileResult;
using driver::compile_netcl;
using driver::make_device;

// ---------------------------------------------------------------------------
// Random expression kernels: compiled result vs host-side evaluation.
// ---------------------------------------------------------------------------

struct ExprGen {
  SplitMix64 rng;
  int depth_budget;

  /// Builds an expression over variables a, b, c and returns (text, eval fn
  /// result on the reference values).
  std::string gen(std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t& value,
                  int depth = 0) {
    const bool leaf = depth >= depth_budget || rng.next_below(4) == 0;
    if (leaf) {
      switch (rng.next_below(4)) {
        case 0: value = a; return "a";
        case 1: value = b; return "b";
        case 2: value = c; return "c";
        default: {
          const auto k = static_cast<std::uint32_t>(rng.next_below(1000));
          value = k;
          return std::to_string(k);
        }
      }
    }
    std::uint32_t lhs = 0;
    std::uint32_t rhs = 0;
    const std::string ls = gen(a, b, c, lhs, depth + 1);
    const std::string rs = gen(a, b, c, rhs, depth + 1);
    switch (rng.next_below(7)) {
      case 0: value = lhs + rhs; return "(" + ls + " + " + rs + ")";
      case 1: value = lhs - rhs; return "(" + ls + " - " + rs + ")";
      case 2: value = lhs & rhs; return "(" + ls + " & " + rs + ")";
      case 3: value = lhs | rhs; return "(" + ls + " | " + rs + ")";
      case 4: value = lhs ^ rhs; return "(" + ls + " ^ " + rs + ")";
      case 5: {
        const unsigned amount = rhs & 7;
        value = lhs << amount;
        return "(" + ls + " << (" + rs + " & 7))";
      }
      default: {
        // Ternary over a comparison.
        value = lhs > rhs ? lhs : rhs;
        return "(" + ls + " > " + rs + " ? " + ls + " : " + rs + ")";
      }
    }
  }
};

class RandomExpressions : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomExpressions, CompiledPipelineMatchesHostSemantics) {
  SplitMix64 seed_rng(GetParam());
  const auto a = static_cast<std::uint32_t>(seed_rng.next());
  const auto b = static_cast<std::uint32_t>(seed_rng.next());
  const auto c = static_cast<std::uint32_t>(seed_rng.next() & 0xFFFF);

  ExprGen gen{SplitMix64(GetParam() * 1234567 + 1), 3};
  std::uint32_t expected = 0;
  const std::string expr = gen.gen(a, b, c, expected);

  const std::string source = "_kernel(1) void k(unsigned a, unsigned b, unsigned c, "
                             "unsigned &out) { out = " +
                             expr + "; }";
  CompileOptions options;
  CompileResult compiled = compile_netcl(source, options);
  ASSERT_TRUE(compiled.ok) << source << "\n" << compiled.errors;
  const KernelSpec spec = compiled.specs.at(1);
  auto device = make_device(std::move(compiled), 1);
  sim::ArgValues args = {{a}, {b}, {c}, {0}};
  device->execute(1, args, {});
  EXPECT_EQ(args[3][0], expected) << source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExpressions, ::testing::Range<std::uint64_t>(1, 41));

// ---------------------------------------------------------------------------
// Control flow: nested conditionals vs a host-side oracle.
// ---------------------------------------------------------------------------

class BranchSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BranchSweep, PredicationMatchesBranches) {
  static const char* kSource = R"(
    _net_ unsigned bucket[4];
    _kernel(1) void k(unsigned x, unsigned &cls, unsigned &count) {
      if (x < 100) {
        if (x < 10) { cls = 0; } else { cls = 1; }
      } else {
        if (x < 1000) { cls = 2; } else { cls = 3; }
      }
      count = ncl::atomic_add_new(&bucket[cls & 3], 1);
    }
  )";
  static std::unique_ptr<sim::SwitchDevice> device = [] {
    CompileOptions options;
    CompileResult compiled = compile_netcl(kSource, options);
    EXPECT_TRUE(compiled.ok) << compiled.errors;
    return make_device(std::move(compiled), 1);
  }();
  static std::map<std::uint32_t, std::uint64_t> oracle_counts;

  const std::uint32_t x = GetParam();
  const std::uint32_t expected_cls = x < 100 ? (x < 10 ? 0 : 1) : (x < 1000 ? 2 : 3);
  const std::uint64_t expected_count = ++oracle_counts[expected_cls];

  sim::ArgValues args = {{x}, {0}, {0}};
  device->execute(1, args, {});
  EXPECT_EQ(args[1][0], expected_cls) << "x=" << x;
  EXPECT_EQ(args[2][0], expected_count) << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(Inputs, BranchSweep,
                         ::testing::Values(0u, 5u, 9u, 10u, 50u, 99u, 100u, 500u, 999u, 1000u,
                                           4096u, 1u << 20, 0xFFFFFFFFu));

// ---------------------------------------------------------------------------
// Loop unrolling: sums for arbitrary trip counts match the closed form.
// ---------------------------------------------------------------------------

class UnrollSweep : public ::testing::TestWithParam<int> {};

TEST_P(UnrollSweep, SumMatchesClosedForm) {
  const int n = GetParam();
  const std::string source = "_kernel(1) void k(unsigned x, unsigned &out) {\n"
                             "  unsigned acc = 0;\n"
                             "  for (auto i = 0; i < " +
                             std::to_string(n) +
                             "; ++i) acc = acc + x + i;\n"
                             "  out = acc;\n}\n";
  CompileOptions options;
  options.limits.stages = 4096;  // deep chains are fine for this property
  CompileResult compiled = compile_netcl(source, options);
  ASSERT_TRUE(compiled.ok) << compiled.errors;
  const KernelSpec spec = compiled.specs.at(1);
  auto device = make_device(std::move(compiled), 1);
  const std::uint32_t x = 1000;
  sim::ArgValues args = {{x}, {0}};
  device->execute(1, args, {});
  const std::uint64_t expected =
      static_cast<std::uint64_t>(n) * x + static_cast<std::uint64_t>(n) * (n - 1) / 2;
  EXPECT_EQ(args[1][0], expected & 0xFFFFFFFF);
}

INSTANTIATE_TEST_SUITE_P(TripCounts, UnrollSweep,
                         ::testing::Values(1, 2, 3, 7, 8, 15, 16, 31, 64));

// ---------------------------------------------------------------------------
// Atomic semantics across all operations: device register vs host fold.
// ---------------------------------------------------------------------------

struct AtomicCase {
  const char* call;       // kernel text for the atomic
  AtomicOpKind op;        // reference semantics
  bool returns_new;
};

class AtomicSweep : public ::testing::TestWithParam<AtomicCase> {};

TEST_P(AtomicSweep, MatchesReferenceFold) {
  const AtomicCase& c = GetParam();
  const std::string source = std::string("_net_ unsigned m;\n") +
                             "_kernel(1) void k(unsigned x, unsigned &out) { out = " + c.call +
                             "; }";
  CompileOptions options;
  CompileResult compiled = compile_netcl(source, options);
  ASSERT_TRUE(compiled.ok) << source << "\n" << compiled.errors;
  auto device = make_device(std::move(compiled), 1);

  std::uint64_t reference_memory = 0;
  SplitMix64 rng(99);
  for (int i = 0; i < 50; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next());
    sim::ArgValues args = {{x}, {0}};
    device->execute(1, args, {});
    const std::uint64_t old_memory = reference_memory;
    reference_memory = ir::eval_atomic(c.op, reference_memory, x, 0, kU32);
    EXPECT_EQ(args[1][0], c.returns_new ? reference_memory : old_memory)
        << c.call << " iteration " << i;
    std::uint64_t device_memory = 0;
    ASSERT_TRUE(device->debug_read("m", {}, device_memory));
    EXPECT_EQ(device_memory, reference_memory);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AtomicSweep,
    ::testing::Values(AtomicCase{"ncl::atomic_add(&m, x)", AtomicOpKind::Add, false},
                      AtomicCase{"ncl::atomic_add_new(&m, x)", AtomicOpKind::Add, true},
                      AtomicCase{"ncl::atomic_sadd_new(&m, x)", AtomicOpKind::SAdd, true},
                      AtomicCase{"ncl::atomic_sub(&m, x)", AtomicOpKind::Sub, false},
                      AtomicCase{"ncl::atomic_or(&m, x)", AtomicOpKind::Or, false},
                      AtomicCase{"ncl::atomic_and(&m, x)", AtomicOpKind::And, false},
                      AtomicCase{"ncl::atomic_xor_new(&m, x)", AtomicOpKind::Xor, true},
                      AtomicCase{"ncl::atomic_min_new(&m, x)", AtomicOpKind::Min, true},
                      AtomicCase{"ncl::atomic_max_new(&m, x)", AtomicOpKind::Max, true}),
    [](const ::testing::TestParamInfo<AtomicCase>& info) {
      std::string name = info.param.call;
      name = name.substr(name.find("atomic_"));
      return name.substr(0, name.find('('));
    });

// ---------------------------------------------------------------------------
// Stage-allocation invariants over every app and option combination.
// ---------------------------------------------------------------------------

struct AllocCase {
  const char* app;
  bool speculation;
};

class AllocationInvariants : public ::testing::TestWithParam<AllocCase> {};

TEST_P(AllocationInvariants, DependencesAndBudgetsHold) {
  const AllocCase& c = GetParam();
  apps::AppSource app = c.app == std::string("AGG")     ? apps::agg_source()
                        : c.app == std::string("CACHE") ? apps::cache_source()
                                                        : apps::calc_source();
  CompileOptions options;
  options.defines = app.defines;
  options.speculation = c.speculation;
  options.limits.stages = 64;  // allow no-speculation variants to fit
  CompileResult compiled = compile_netcl(app.source, options);
  ASSERT_TRUE(compiled.ok) << compiled.errors;

  const p4::StageLimits& limits = options.limits;
  // Per-stage budgets hold.
  for (const p4::StageUsage& usage : compiled.allocation.per_stage) {
    EXPECT_TRUE(usage.fits(limits)) << p4::to_string(usage);
  }
  // Every register group is co-located.
  for (const auto& kernel : compiled.kernels) {
    for (const p4::LinearInst& li : kernel.insts) {
      if (li.inst->global != nullptr) {
        EXPECT_EQ(li.stage, compiled.allocation.global_stage.at(li.inst->global));
      }
      EXPECT_GE(li.stage, 0);
      EXPECT_LT(li.stage, compiled.allocation.stages_used);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, AllocationInvariants,
                         ::testing::Values(AllocCase{"AGG", true}, AllocCase{"AGG", false},
                                           AllocCase{"CACHE", true}, AllocCase{"CACHE", false},
                                           AllocCase{"CALC", true}, AllocCase{"CALC", false}),
                         [](const ::testing::TestParamInfo<AllocCase>& info) {
                           return std::string(info.param.app) +
                                  (info.param.speculation ? "_spec" : "_nospec");
                         });

// ---------------------------------------------------------------------------
// Hash-width sweep: sliced hash results match the host library.
// ---------------------------------------------------------------------------

class HashWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(HashWidthSweep, SlicedCrc32MatchesHost) {
  const int width = GetParam();
  const std::string source = "_kernel(1) void k(unsigned x, uint64_t &h) { h = ncl::crc32<" +
                             std::to_string(width) + ">(x); }";
  CompileOptions options;
  CompileResult compiled = compile_netcl(source, options);
  ASSERT_TRUE(compiled.ok) << compiled.errors;
  auto device = make_device(std::move(compiled), 1);
  SplitMix64 rng(7);
  for (int i = 0; i < 20; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next());
    sim::ArgValues args = {{x}, {0}};
    device->execute(1, args, {});
    const std::uint64_t full = crc32_u64(x, 4);
    const std::uint64_t mask = width >= 64 ? ~0ULL : (1ULL << width) - 1;
    EXPECT_EQ(args[1][0], full & mask) << "width " << width;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, HashWidthSweep, ::testing::Values(8, 16, 32));

}  // namespace
}  // namespace netcl
