#include <gtest/gtest.h>

#include "runtime/device_runtime.hpp"
#include "runtime/host.hpp"

namespace netcl::runtime {
namespace {

KernelSpec spec_of(const std::string& signature) {
  DiagnosticEngine diags;
  SourceBuffer buffer("t", "_kernel(1) void k(" + signature + ") {}");
  Program program = analyze_netcl(buffer, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  return make_kernel_spec(*program.kernels()[0]);
}

TEST(Message, PackSetsHeaderFields) {
  const KernelSpec spec = spec_of("unsigned a, unsigned &b");
  const Message message(3, 9, 1, 4);
  sim::ArgValues args = sim::make_args(spec);
  args[0][0] = 77;
  const sim::Packet packet = pack(message, spec, args);
  EXPECT_TRUE(packet.has_netcl);
  EXPECT_EQ(packet.netcl.src, 3);
  EXPECT_EQ(packet.netcl.dst, 9);
  EXPECT_EQ(packet.netcl.to, 4);
  EXPECT_EQ(packet.netcl.from, 0);  // nothing has computed on it yet
  EXPECT_EQ(packet.netcl.comp, 1);
  EXPECT_EQ(packet.netcl.len, packet.payload.size());
  EXPECT_EQ(static_cast<int>(packet.payload.size()), spec.byte_size());
}

TEST(Message, PackUnpackRoundTrip) {
  const KernelSpec spec = spec_of("char op, uint64_t key, uint32_t _spec(4) *v, char &hit");
  const Message message(1, 2, 1, 1);
  sim::ArgValues args = sim::make_args(spec);
  args[0][0] = 2;
  args[1][0] = 0xA1B2C3D4E5F60708ULL;
  args[2] = {10, 20, 30, 40};
  args[3][0] = 1;
  const sim::Packet packet = pack(message, spec, args);
  const auto [message2, args2] = unpack(packet, spec);
  EXPECT_EQ(message2.src, message.src);
  EXPECT_EQ(message2.dst, message.dst);
  EXPECT_EQ(message2.comp, message.comp);
  EXPECT_EQ(args2, args);
}

TEST(HostRuntime, SendWithoutSpecIsDropped) {
  sim::Fabric fabric;
  HostRuntime host(fabric, 1);
  host.send(Message(1, 2, 1, 1), {});
  EXPECT_EQ(host.sent, 0u);
}

TEST(HostRuntime, SrcIsForcedToOwnId) {
  const KernelSpec spec = spec_of("unsigned a");
  sim::Fabric fabric;
  HostRuntime alice(fabric, 1);
  HostRuntime bob(fabric, 2);
  alice.register_spec(1, spec);
  bob.register_spec(1, spec);
  fabric.connect(sim::host_ref(1), sim::host_ref(2));
  std::uint16_t seen_src = 0;
  bob.on_receive([&](const Message& m, sim::ArgValues&) { seen_src = m.src; });
  alice.send(Message(/*forged src*/ 42, 2, 1, 0), sim::make_args(spec));
  fabric.run();
  EXPECT_EQ(seen_src, 1);
}

TEST(DeviceConnection, InvalidDeviceId) {
  sim::Fabric fabric;
  DeviceConnection connection(fabric, 99);
  EXPECT_FALSE(connection.valid());
  EXPECT_FALSE(connection.managed_write("x", 1));
  std::uint64_t out = 0;
  EXPECT_FALSE(connection.managed_read("x", out));
}

// --- the device runtime action table (Table II semantics) --------------------

struct ActionCase {
  ActionKind action;
  std::uint16_t target;
  std::uint16_t from_before;  // previous computing device (0 = none)
  // expectations:
  bool drop;
  bool multicast;
  std::uint16_t dst_after;
  std::uint16_t to_after;
};

class DeviceRuntimeActions : public ::testing::TestWithParam<ActionCase> {};

TEST_P(DeviceRuntimeActions, RewritesHeader) {
  const ActionCase& c = GetParam();
  sim::NetclHeader header;
  header.src = 1;
  header.dst = 2;
  header.from = c.from_before;
  header.to = 5;  // this device
  const ForwardDecision decision = apply_action(header, c.action, c.target, /*device=*/5);
  EXPECT_EQ(decision.drop, c.drop);
  EXPECT_EQ(decision.multicast, c.multicast);
  EXPECT_EQ(header.from, 5) << "from must always become the computing device";
  if (!c.drop && !c.multicast) {
    EXPECT_EQ(header.dst, c.dst_after);
    EXPECT_EQ(header.to, c.to_after);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table2, DeviceRuntimeActions,
    ::testing::Values(
        // action, target, from_before, drop, mcast, dst_after, to_after
        ActionCase{ActionKind::Drop, 0, 0, true, false, 0, 0},
        ActionCase{ActionKind::Pass, 0, 0, false, false, 2, 0},
        ActionCase{ActionKind::None, 0, 0, false, false, 2, 0},
        ActionCase{ActionKind::SendToHost, 9, 0, false, false, 9, 0},
        ActionCase{ActionKind::SendToDevice, 7, 0, false, false, 2, 7},
        ActionCase{ActionKind::Multicast, 42, 0, false, true, 0, 0},
        // reflect with no previous device: back to the source host
        ActionCase{ActionKind::Reflect, 0, 0, false, false, 1, 0},
        // reflect with a previous computing device: back to that device
        ActionCase{ActionKind::Reflect, 0, 3, false, false, 2, 3},
        // reflect_long: always back to the source host
        ActionCase{ActionKind::ReflectLong, 0, 3, false, false, 1, 0}),
    [](const ::testing::TestParamInfo<ActionCase>& info) {
      return netcl::to_string(info.param.action) + "_from" +
             std::to_string(info.param.from_before);
    });

}  // namespace
}  // namespace netcl::runtime
