#include <gtest/gtest.h>

#include <functional>

#include "apps/sources.hpp"
#include "driver/compiler.hpp"
#include "net/sim_transport.hpp"
#include "runtime/device_runtime.hpp"
#include "runtime/error.hpp"
#include "runtime/failure.hpp"
#include "runtime/host.hpp"
#include "runtime/host_exec.hpp"
#include "runtime/retransmit.hpp"
#include "support/hashes.hpp"

namespace netcl::runtime {
namespace {

KernelSpec spec_of(const std::string& signature) {
  DiagnosticEngine diags;
  SourceBuffer buffer("t", "_kernel(1) void k(" + signature + ") {}");
  Program program = analyze_netcl(buffer, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  return make_kernel_spec(*program.kernels()[0]);
}

TEST(Message, PackSetsHeaderFields) {
  const KernelSpec spec = spec_of("unsigned a, unsigned &b");
  const Message message(3, 9, 1, 4);
  sim::ArgValues args = sim::make_args(spec);
  args[0][0] = 77;
  const sim::Packet packet = pack(message, spec, args);
  EXPECT_TRUE(packet.has_netcl);
  EXPECT_EQ(packet.netcl.src, 3);
  EXPECT_EQ(packet.netcl.dst, 9);
  EXPECT_EQ(packet.netcl.to, 4);
  EXPECT_EQ(packet.netcl.from, 0);  // nothing has computed on it yet
  EXPECT_EQ(packet.netcl.comp, 1);
  EXPECT_EQ(packet.netcl.len, packet.payload.size());
  EXPECT_EQ(static_cast<int>(packet.payload.size()), spec.byte_size());
}

TEST(Message, PackUnpackRoundTrip) {
  const KernelSpec spec = spec_of("char op, uint64_t key, uint32_t _spec(4) *v, char &hit");
  const Message message(1, 2, 1, 1);
  sim::ArgValues args = sim::make_args(spec);
  args[0][0] = 2;
  args[1][0] = 0xA1B2C3D4E5F60708ULL;
  args[2] = {10, 20, 30, 40};
  args[3][0] = 1;
  const sim::Packet packet = pack(message, spec, args);
  const auto [message2, args2] = unpack(packet, spec);
  EXPECT_EQ(message2.src, message.src);
  EXPECT_EQ(message2.dst, message.dst);
  EXPECT_EQ(message2.comp, message.comp);
  EXPECT_EQ(args2, args);
}

TEST(HostRuntime, SendWithoutSpecIsDropped) {
  sim::Fabric fabric;
  HostRuntime host(fabric, 1);
  host.send(Message(1, 2, 1, 1), {});
  EXPECT_EQ(host.sent, 0u);
}

TEST(HostRuntime, SrcIsForcedToOwnId) {
  const KernelSpec spec = spec_of("unsigned a");
  sim::Fabric fabric;
  HostRuntime alice(fabric, 1);
  HostRuntime bob(fabric, 2);
  alice.register_spec(1, spec);
  bob.register_spec(1, spec);
  fabric.connect(sim::host_ref(1), sim::host_ref(2));
  std::uint16_t seen_src = 0;
  bob.on_receive([&](const Message& m, sim::ArgValues&) { seen_src = m.src; });
  alice.send(Message(/*forged src*/ 42, 2, 1, 0), sim::make_args(spec));
  fabric.run();
  EXPECT_EQ(seen_src, 1);
}

TEST(HostRuntime, ExplicitTransportBehavesLikeFabricCtor) {
  const KernelSpec spec = spec_of("unsigned a");
  sim::Fabric fabric;
  net::SimTransport transport(fabric, 1);
  HostRuntime alice(transport, 1);
  HostRuntime bob(fabric, 2);
  alice.register_spec(1, spec);
  bob.register_spec(1, spec);
  fabric.connect(sim::host_ref(1), sim::host_ref(2));
  int received = 0;
  bob.on_receive([&](const Message&, sim::ArgValues&) { ++received; });
  alice.send(Message(1, 2, 1, 0), sim::make_args(spec));
  fabric.run();
  EXPECT_EQ(received, 1);
  EXPECT_STREQ(alice.transport().kind(), "sim");
}

TEST(HostRuntime, StaleRoundTripsExpireAtCap) {
  const KernelSpec spec = spec_of("unsigned a");
  sim::Fabric fabric;
  HostRuntime host(fabric, 1);  // host 2 is unreachable: no replies ever
  host.register_spec(1, spec);
  for (std::size_t i = 0; i < HostRuntime::kMaxPendingRoundTrips + 3; ++i) {
    host.send(Message(1, 2, 1, 0), sim::make_args(spec));
  }
  EXPECT_EQ(host.sent, HostRuntime::kMaxPendingRoundTrips + 3);
  EXPECT_EQ(host.dropped_stale_round_trip, 3u);
}

// --- RetransmitWindow ---------------------------------------------------------

TEST(RetransmitWindow, RetransmitsUntilAcknowledged) {
  sim::Fabric fabric;
  net::SimTransport transport(fabric, 1);
  std::vector<std::pair<int, bool>> sends;  // (chunk, is_retransmission)
  RetransmitWindow::Config config;
  config.chunks = 2;
  config.window = 2;
  config.retransmit_ns = 1000.0;
  RetransmitWindow window(transport, config, [&](int chunk, int slot, bool retx) {
    EXPECT_EQ(slot, chunk % 2);
    sends.emplace_back(chunk, retx);
  });
  window.start();
  ASSERT_EQ(sends.size(), 2u);

  // Timers at 1000/2000/3000 find both chunks unacknowledged and resend.
  fabric.run(3500.0);
  EXPECT_EQ(window.retransmissions(), 6u);
  EXPECT_FALSE(window.complete());

  EXPECT_TRUE(window.acknowledge_slot(0));
  EXPECT_TRUE(window.acknowledge_slot(1));
  EXPECT_FALSE(window.acknowledge_slot(0));  // already retired
  EXPECT_FALSE(window.acknowledge_slot(9));  // off-the-wire slot, ignored
  EXPECT_TRUE(window.complete());

  // Remaining armed timers fire but find the chunks done.
  fabric.run();
  EXPECT_EQ(window.retransmissions(), 6u);
  EXPECT_EQ(sends.size(), 8u);
}

TEST(RetransmitWindow, AcknowledgeAdvancesPerSlotChain) {
  sim::Fabric fabric;
  net::SimTransport transport(fabric, 1);
  std::vector<int> launched;
  RetransmitWindow::Config config;
  config.chunks = 5;
  config.window = 2;
  config.retransmit_ns = 1e12;  // never fires in this test
  RetransmitWindow window(transport, config, [&](int chunk, int, bool) {
    launched.push_back(chunk);
  });
  window.start();
  EXPECT_EQ(window.stride(), 2);
  EXPECT_EQ(launched, (std::vector<int>{0, 1}));
  EXPECT_EQ(window.chunk_for_slot(0), 0);
  EXPECT_EQ(window.version(0), 0);
  EXPECT_EQ(window.version(2), 1);  // chunk 2 reuses slot 0, other version
  EXPECT_EQ(window.version(4), 0);

  window.acknowledge_slot(0);  // retires 0, launches 2
  EXPECT_EQ(window.chunk_for_slot(0), 2);
  window.acknowledge_slot(1);  // retires 1, launches 3
  window.acknowledge_slot(0);  // retires 2, launches 4
  window.acknowledge_slot(0);  // retires 4; nothing left for slot 0
  window.acknowledge_slot(1);  // retires 3
  EXPECT_EQ(launched, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(window.complete());
  EXPECT_EQ(window.completed(), 5);
  EXPECT_EQ(window.retransmissions(), 0u);
}

TEST(RetransmitWindow, GivesUpAfterRetryBudgetWithTypedError) {
  sim::Fabric fabric;
  net::SimTransport transport(fabric, 1);
  int sends = 0;
  RetransmitWindow::Config config;
  config.chunks = 2;
  config.window = 2;
  config.retransmit_ns = 1000.0;
  config.max_retries = 3;
  RetransmitWindow window(transport, config, [&](int, int, bool) { ++sends; });
  int error_calls = 0;
  window.on_error([&](const Error& error) {
    ++error_calls;
    EXPECT_EQ(error.kind, ErrorKind::kRetriesExhausted);
  });
  window.start();
  EXPECT_EQ(sends, 2);

  // Nothing ever acknowledges: each chunk sends 3 retransmissions, then
  // the first exhausted chunk fails the window and drains it.
  fabric.run();
  EXPECT_TRUE(window.failed());
  EXPECT_EQ(window.last_error().kind, ErrorKind::kRetriesExhausted);
  EXPECT_EQ(error_calls, 1);
  EXPECT_LE(window.retransmissions(), 6u);  // ≤ max_retries per chunk
  EXPECT_FALSE(window.complete());
  // Inert afterwards: late responses are ignored, nothing new is sent.
  EXPECT_FALSE(window.acknowledge_slot(0));
  EXPECT_FALSE(window.acknowledge_slot(1));
  const int sends_after_failure = sends;
  fabric.run();
  EXPECT_EQ(sends, sends_after_failure);
}

TEST(RetransmitWindow, BackoffScheduleIsExponentialAndCapped) {
  sim::Fabric fabric;
  net::SimTransport transport(fabric, 1);
  RetransmitWindow::Config config;
  config.chunks = 1;
  config.window = 1;
  config.retransmit_ns = 1000.0;
  config.max_retries = 5;
  config.backoff_factor = 2.0;
  config.backoff_max_ns = 4000.0;
  std::vector<double> send_times;
  RetransmitWindow window(transport, config,
                          [&](int, int, bool) { send_times.push_back(transport.now_ns()); });

  // The closed-form schedule: 1000, 2000, 4000 (cap), 4000, ...
  EXPECT_DOUBLE_EQ(window.retry_delay_ns(0), 1000.0);
  EXPECT_DOUBLE_EQ(window.retry_delay_ns(1), 2000.0);
  EXPECT_DOUBLE_EQ(window.retry_delay_ns(2), 4000.0);
  EXPECT_DOUBLE_EQ(window.retry_delay_ns(3), 4000.0);

  window.start();
  fabric.run();
  EXPECT_TRUE(window.failed());
  // Transmissions at 0, +1000, +2000, +4000, +4000, +4000 on the sim clock.
  ASSERT_EQ(send_times.size(), 6u);
  const std::vector<double> expected = {0.0, 1000.0, 3000.0, 7000.0, 11000.0, 15000.0};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(send_times[i], expected[i]) << "transmission " << i;
  }
}

TEST(RetransmitWindow, DefaultConfigNeverGivesUp) {
  sim::Fabric fabric;
  net::SimTransport transport(fabric, 1);
  RetransmitWindow::Config config;
  config.chunks = 1;
  config.window = 1;
  config.retransmit_ns = 1000.0;
  RetransmitWindow window(transport, config, [](int, int, bool) {});
  window.start();
  fabric.run(100000.0);
  EXPECT_FALSE(window.failed());
  EXPECT_EQ(window.retransmissions(), 100u);  // fixed 1000 ns cadence
}

TEST(RetransmitWindow, TimerAfterDestructionIsNoOp) {
  sim::Fabric fabric;
  net::SimTransport transport(fabric, 1);
  int sends = 0;
  {
    RetransmitWindow::Config config;
    config.chunks = 1;
    config.window = 1;
    config.retransmit_ns = 1000.0;
    RetransmitWindow window(transport, config, [&](int, int, bool) { ++sends; });
    window.start();
    EXPECT_EQ(sends, 1);
    // The retransmission timer is armed on the fabric; the window dies now.
  }
  // The armed timer fires after the window's destruction: the weak token
  // must make it a no-op instead of a use-after-free.
  fabric.run();
  EXPECT_EQ(sends, 1);
}

TEST(DeviceConnection, InvalidDeviceId) {
  sim::Fabric fabric;
  DeviceConnection connection(fabric, 99);
  EXPECT_FALSE(connection.valid());
  // The typed forms name the failure: no device attached → kDisconnected.
  EXPECT_EQ(connection.managed_write_e("x", 1).kind, runtime::ErrorKind::kDisconnected);
  std::uint64_t out = 0;
  EXPECT_EQ(connection.managed_read_e("x", out).kind, runtime::ErrorKind::kDisconnected);
}

// --- failure detection and fallback (ISSUE 3) --------------------------------

driver::CompileResult compile_app(const std::string& source, const DefineMap& defines) {
  driver::CompileOptions options;
  options.device_id = 1;
  options.defines = defines;
  driver::CompileResult compiled = driver::compile_netcl(source, options);
  EXPECT_TRUE(compiled.ok) << compiled.errors;
  return compiled;
}

/// A detector probing device 1 of `fabric` through `connection`.
FailureDetector::ProbeFn probe_of(DeviceConnection& connection) {
  return [&connection] {
    FailureDetector::ProbeResult result;
    runtime::PingInfo info;
    result.reachable = connection.ping(info);
    result.generation = info.generation;
    return result;
  };
}

TEST(FailureDetector, DeclaresDownAfterMissThresholdAndRecovers) {
  sim::Fabric fabric;
  fabric.add_forwarding_device(1);
  net::SimTransport transport(fabric, 1);
  DeviceConnection connection(fabric, 1);
  obs::MetricsRegistry metrics("failure_test");
  FailureDetector::Config config;
  config.interval_ns = 1000.0;
  config.miss_threshold = 3;
  FailureDetector detector(transport, probe_of(connection), config, &metrics);
  std::vector<std::pair<FailureDetector::State, bool>> transitions;
  detector.subscribe([&](FailureDetector::State state, bool generation_changed) {
    transitions.emplace_back(state, generation_changed);
  });
  detector.start();

  // Healthy probes at 1000 and 2000 learn the baseline generation.
  fabric.run(2500.0);
  EXPECT_TRUE(detector.up());
  EXPECT_EQ(detector.generation(), 1u);
  EXPECT_TRUE(transitions.empty());

  // Crash: misses at 3000/4000 stay UP, the third at 5000 flips to DOWN.
  fabric.crash_device(1);
  fabric.run(4500.0);
  EXPECT_TRUE(detector.up());
  EXPECT_EQ(detector.consecutive_misses(), 2);
  fabric.run(5500.0);
  EXPECT_FALSE(detector.up());
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0], std::make_pair(FailureDetector::State::kDown, false));
  EXPECT_EQ(metrics.gauge("device_up").value(), 0.0);
  EXPECT_EQ(metrics.counter("failovers").value(), 1u);

  // Power-cycle: the next probe sees the device up with a new generation.
  fabric.restart_device(1);
  fabric.run(6500.0);
  detector.stop();
  fabric.run(20000.0);
  EXPECT_TRUE(detector.up());
  EXPECT_EQ(detector.generation(), 2u);
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[1], std::make_pair(FailureDetector::State::kUp, true));
  EXPECT_EQ(metrics.counter("recoveries").value(), 1u);
  EXPECT_EQ(metrics.counter("generation_changes").value(), 1u);
  EXPECT_EQ(metrics.histogram("failover_latency_ns").count(), 1u);
  EXPECT_EQ(metrics.gauge("device_up").value(), 1.0);
  // stop() invalidated the heartbeat: no probes ran after 6500.
  EXPECT_EQ(metrics.counter("heartbeats.ok").value() + metrics.counter("heartbeats.missed"),
            6u);
}

TEST(FailureDetector, InPlaceGenerationChangeNotifiesWhileUp) {
  sim::Fabric fabric;
  fabric.add_forwarding_device(1);
  net::SimTransport transport(fabric, 1);
  DeviceConnection connection(fabric, 1);
  FailureDetector::Config config;
  config.interval_ns = 1000.0;
  config.miss_threshold = 3;
  FailureDetector detector(transport, probe_of(connection), config);
  std::vector<bool> generation_flags;
  detector.subscribe([&](FailureDetector::State state, bool generation_changed) {
    EXPECT_EQ(state, FailureDetector::State::kUp);
    generation_flags.push_back(generation_changed);
  });
  detector.start();
  fabric.run(1500.0);
  // Restart faster than a heartbeat interval: never observed DOWN, but the
  // generation jump must still be reported.
  fabric.crash_device(1);
  fabric.restart_device(1);
  fabric.run(2500.0);
  detector.stop();
  fabric.run(5000.0);
  EXPECT_EQ(generation_flags, std::vector<bool>{true});
}

TEST(Fallback, FailFastSurfacesTypedErrorWhileDown) {
  const KernelSpec spec = spec_of("unsigned a, unsigned &b");
  sim::Fabric fabric;
  fabric.add_forwarding_device(1);
  fabric.connect(sim::host_ref(1), sim::device_ref(1));
  HostRuntime host(fabric, 1);
  host.register_spec(1, spec);
  DeviceConnection connection(fabric, 1);
  FailureDetector::Config config;
  config.interval_ns = 1000.0;
  config.miss_threshold = 2;
  FailureDetector detector(host.transport(), probe_of(connection), config);
  host.attach_failure_detector(detector);
  host.set_fallback_policy(FallbackPolicy::kFailFast);
  detector.start();

  fabric.crash_device(1);
  fabric.run(2500.0);  // misses at 1000 and 2000 -> DOWN
  ASSERT_FALSE(detector.up());

  Error seen;
  host.on_error([&](const Error& error) { seen = error; });
  host.send(Message(1, 0, 1, 1), sim::make_args(spec));
  EXPECT_EQ(host.sent, 0u);
  EXPECT_EQ(host.fallback_fail_fast, 1u);
  EXPECT_EQ(seen.kind, ErrorKind::kDeviceDown);
  EXPECT_EQ(host.last_error().kind, ErrorKind::kDeviceDown);
  detector.stop();
}

TEST(Fallback, QueueUntilRecoveredFlushesAndResyncs) {
  auto compiled = compile_app(R"(
    _kernel(1) void k(unsigned a, unsigned &b) { b = a + 7; return ncl::reflect(); }
  )",
                              {});
  const KernelSpec spec = compiled.specs.at(1);
  sim::Fabric fabric;
  fabric.add_device(driver::make_device(std::move(compiled), 1));
  fabric.connect(sim::host_ref(1), sim::device_ref(1));
  HostRuntime host(fabric, 1);
  host.register_spec(1, spec);
  DeviceConnection connection(fabric, 1);
  FailureDetector::Config config;
  config.interval_ns = 1000.0;
  config.miss_threshold = 2;
  FailureDetector detector(host.transport(), probe_of(connection), config);
  host.attach_failure_detector(detector);
  host.set_fallback_policy(FallbackPolicy::kQueueUntilRecovered);
  int resyncs = 0;
  host.on_resync([&] { ++resyncs; });
  detector.start();

  int received = 0;
  host.on_receive([&](const Message&, sim::ArgValues&) { ++received; });

  // Learn the baseline generation, then crash and detect.
  fabric.run(1500.0);
  fabric.crash_device(1);
  fabric.run(4500.0);
  ASSERT_FALSE(detector.up());

  for (int i = 0; i < 3; ++i) {
    sim::ArgValues args = sim::make_args(spec);
    args[0][0] = static_cast<std::uint64_t>(i);
    host.send(Message(1, 0, 1, 1), args);
  }
  EXPECT_EQ(host.sent, 0u);
  EXPECT_EQ(host.fallback_queued, 3u);
  EXPECT_EQ(received, 0);

  // Recovery flushes the queue (after the resync hook, since the restart
  // changed the generation).
  fabric.restart_device(1);
  fabric.run(10000.0);
  detector.stop();
  fabric.run(20000.0);
  EXPECT_TRUE(detector.up());
  EXPECT_EQ(resyncs, 1);
  EXPECT_EQ(host.fallback_flushed, 3u);
  EXPECT_EQ(host.sent, 3u);
  EXPECT_EQ(received, 3);
}

TEST(Fallback, HostExecuteIsByteIdenticalToUninterruptedRun) {
  apps::AppSource app = apps::calc_source();
  const KernelSpec spec = compile_app(app.source, app.defines).specs.at(1);

  struct Op {
    std::uint64_t code, a, b;
  };
  SplitMix64 rng(11);
  std::vector<Op> ops;
  for (int i = 0; i < 16; ++i) {
    ops.push_back({1 + rng.next_below(5), rng.next() & 0xFFFFFFFF, rng.next() & 0xFFFFFFFF});
  }

  // Runs all ops sequentially (send i+1 once i answered), with a per-op
  // resend timer so ops lost to a crash-before-detection are retried.
  // With crash_at > 0 the device dies mid-run and never comes back; the
  // host executor must take over.
  auto run = [&](double crash_at_ns) {
    auto compiled = compile_app(app.source, app.defines);
    sim::Fabric fabric(3);
    fabric.add_device(driver::make_device(std::move(compiled), 1));
    fabric.connect(sim::host_ref(1), sim::device_ref(1));
    HostRuntime host(fabric, 1);
    host.register_spec(1, spec);
    DeviceConnection connection(fabric, 1);
    FailureDetector::Config config;
    config.interval_ns = 1000.0;
    config.miss_threshold = 2;
    FailureDetector detector(host.transport(), probe_of(connection), config);
    host.attach_failure_detector(detector);
    host.set_fallback_policy(FallbackPolicy::kHostExecute);
    host.set_host_executor(std::make_unique<HostExecutor>(
        driver::make_device(compile_app(app.source, app.defines), 1)));
    detector.start();

    std::vector<std::vector<std::uint8_t>> results;
    std::function<void(std::size_t)> send_op = [&](std::size_t i) {
      if (results.size() > i) return;
      sim::ArgValues args = sim::make_args(spec);
      args[0][0] = ops[i].code;
      args[1][0] = ops[i].a;
      args[2][0] = ops[i].b;
      host.send(Message(1, 0, 1, 1), args);
      host.transport().schedule(5000.0, [&send_op, &results, i] {
        if (results.size() <= i) send_op(i);
      });
    };
    host.on_receive([&](const Message&, sim::ArgValues& args) {
      results.push_back(sim::encode_args(spec, args));
      if (results.size() < ops.size()) {
        send_op(results.size());
      } else {
        detector.stop();
      }
    });
    if (crash_at_ns > 0.0) {
      fabric.schedule(crash_at_ns, [](sim::Fabric& f) { f.crash_device(1); });
    }
    send_op(0);
    fabric.run(1e9);
    EXPECT_EQ(results.size(), ops.size());
    if (crash_at_ns > 0.0) {
      EXPECT_GT(host.fallback_host_executed, 0u);
    }
    return results;
  };

  const auto uninterrupted = run(0.0);
  const auto crashed = run(4200.0);  // mid-run, between two ops
  ASSERT_EQ(uninterrupted.size(), ops.size());
  EXPECT_EQ(crashed, uninterrupted);
}

TEST(DeviceConnection, ResyncReplaysJournalAfterRestart) {
  auto compiled = compile_app(R"(
    _managed_ unsigned thresh;
    _managed_ _lookup_ ncl::kv<uint64_t, uint32_t> route[16];
    _kernel(1) void k(uint64_t key, char &found, uint32_t &val) {
      found = ncl::lookup(route, key, val);
    }
  )",
                              {});
  sim::Fabric fabric;
  fabric.add_device(driver::make_device(std::move(compiled), 1));
  DeviceConnection connection(fabric, 1);
  ASSERT_TRUE(connection.valid());
  ASSERT_TRUE(connection.managed_write_e("thresh", 500).ok());
  ASSERT_TRUE(connection.insert_e("route", 7, 70).ok());
  ASSERT_TRUE(connection.insert_e("route", 8, 80).ok());
  ASSERT_TRUE(connection.remove_e("route", 8).ok());

  // Table contents are only observable the way a packet would see them.
  auto lookup = [&](std::uint64_t key, std::uint64_t& out) {
    sim::ArgValues args = {{key}, {0}, {0}};
    fabric.device(1)->execute(1, args, {});
    out = args[2][0];
    return args[1][0] != 0;
  };

  // A restart wipes the offloaded state...
  fabric.crash_device(1);
  fabric.restart_device(1);
  std::uint64_t value = 0;
  ASSERT_TRUE(connection.managed_read_e("thresh", value).ok());
  EXPECT_EQ(value, 0u);
  EXPECT_FALSE(lookup(7, value));

  // ...and resync() restores exactly the journaled state.
  EXPECT_TRUE(connection.resync_e().ok());
  EXPECT_EQ(connection.resyncs(), 1u);
  ASSERT_TRUE(connection.managed_read_e("thresh", value).ok());
  EXPECT_EQ(value, 500u);
  ASSERT_TRUE(lookup(7, value));
  EXPECT_EQ(value, 70u);
  // The removed key must stay removed.
  EXPECT_FALSE(lookup(8, value));
}

TEST(FailureDetector, ProbeTimerAfterDestructionIsNoOp) {
  sim::Fabric fabric;
  fabric.add_forwarding_device(1);
  net::SimTransport transport(fabric, 1);
  int probes = 0;
  {
    FailureDetector::Config config;
    config.interval_ns = 1000.0;
    FailureDetector detector(
        transport,
        [&] {
          ++probes;
          return FailureDetector::ProbeResult{true, 1};
        },
        config);
    detector.start();
  }
  fabric.run(5000.0);
  EXPECT_EQ(probes, 0);
}

// --- the device runtime action table (Table II semantics) --------------------

struct ActionCase {
  ActionKind action;
  std::uint16_t target;
  std::uint16_t from_before;  // previous computing device (0 = none)
  // expectations:
  bool drop;
  bool multicast;
  std::uint16_t dst_after;
  std::uint16_t to_after;
};

class DeviceRuntimeActions : public ::testing::TestWithParam<ActionCase> {};

TEST_P(DeviceRuntimeActions, RewritesHeader) {
  const ActionCase& c = GetParam();
  sim::NetclHeader header;
  header.src = 1;
  header.dst = 2;
  header.from = c.from_before;
  header.to = 5;  // this device
  const ForwardDecision decision = apply_action(header, c.action, c.target, /*device=*/5);
  EXPECT_EQ(decision.drop, c.drop);
  EXPECT_EQ(decision.multicast, c.multicast);
  EXPECT_EQ(header.from, 5) << "from must always become the computing device";
  if (!c.drop && !c.multicast) {
    EXPECT_EQ(header.dst, c.dst_after);
    EXPECT_EQ(header.to, c.to_after);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table2, DeviceRuntimeActions,
    ::testing::Values(
        // action, target, from_before, drop, mcast, dst_after, to_after
        ActionCase{ActionKind::Drop, 0, 0, true, false, 0, 0},
        ActionCase{ActionKind::Pass, 0, 0, false, false, 2, 0},
        ActionCase{ActionKind::None, 0, 0, false, false, 2, 0},
        ActionCase{ActionKind::SendToHost, 9, 0, false, false, 9, 0},
        ActionCase{ActionKind::SendToDevice, 7, 0, false, false, 2, 7},
        ActionCase{ActionKind::Multicast, 42, 0, false, true, 0, 0},
        // reflect with no previous device: back to the source host
        ActionCase{ActionKind::Reflect, 0, 0, false, false, 1, 0},
        // reflect with a previous computing device: back to that device
        ActionCase{ActionKind::Reflect, 0, 3, false, false, 2, 3},
        // reflect_long: always back to the source host
        ActionCase{ActionKind::ReflectLong, 0, 3, false, false, 1, 0}),
    [](const ::testing::TestParamInfo<ActionCase>& info) {
      return netcl::to_string(info.param.action) + "_from" +
             std::to_string(info.param.from_before);
    });

}  // namespace
}  // namespace netcl::runtime
