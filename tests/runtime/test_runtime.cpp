#include <gtest/gtest.h>

#include "net/sim_transport.hpp"
#include "runtime/device_runtime.hpp"
#include "runtime/host.hpp"
#include "runtime/retransmit.hpp"

namespace netcl::runtime {
namespace {

KernelSpec spec_of(const std::string& signature) {
  DiagnosticEngine diags;
  SourceBuffer buffer("t", "_kernel(1) void k(" + signature + ") {}");
  Program program = analyze_netcl(buffer, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_all();
  return make_kernel_spec(*program.kernels()[0]);
}

TEST(Message, PackSetsHeaderFields) {
  const KernelSpec spec = spec_of("unsigned a, unsigned &b");
  const Message message(3, 9, 1, 4);
  sim::ArgValues args = sim::make_args(spec);
  args[0][0] = 77;
  const sim::Packet packet = pack(message, spec, args);
  EXPECT_TRUE(packet.has_netcl);
  EXPECT_EQ(packet.netcl.src, 3);
  EXPECT_EQ(packet.netcl.dst, 9);
  EXPECT_EQ(packet.netcl.to, 4);
  EXPECT_EQ(packet.netcl.from, 0);  // nothing has computed on it yet
  EXPECT_EQ(packet.netcl.comp, 1);
  EXPECT_EQ(packet.netcl.len, packet.payload.size());
  EXPECT_EQ(static_cast<int>(packet.payload.size()), spec.byte_size());
}

TEST(Message, PackUnpackRoundTrip) {
  const KernelSpec spec = spec_of("char op, uint64_t key, uint32_t _spec(4) *v, char &hit");
  const Message message(1, 2, 1, 1);
  sim::ArgValues args = sim::make_args(spec);
  args[0][0] = 2;
  args[1][0] = 0xA1B2C3D4E5F60708ULL;
  args[2] = {10, 20, 30, 40};
  args[3][0] = 1;
  const sim::Packet packet = pack(message, spec, args);
  const auto [message2, args2] = unpack(packet, spec);
  EXPECT_EQ(message2.src, message.src);
  EXPECT_EQ(message2.dst, message.dst);
  EXPECT_EQ(message2.comp, message.comp);
  EXPECT_EQ(args2, args);
}

TEST(HostRuntime, SendWithoutSpecIsDropped) {
  sim::Fabric fabric;
  HostRuntime host(fabric, 1);
  host.send(Message(1, 2, 1, 1), {});
  EXPECT_EQ(host.sent, 0u);
}

TEST(HostRuntime, SrcIsForcedToOwnId) {
  const KernelSpec spec = spec_of("unsigned a");
  sim::Fabric fabric;
  HostRuntime alice(fabric, 1);
  HostRuntime bob(fabric, 2);
  alice.register_spec(1, spec);
  bob.register_spec(1, spec);
  fabric.connect(sim::host_ref(1), sim::host_ref(2));
  std::uint16_t seen_src = 0;
  bob.on_receive([&](const Message& m, sim::ArgValues&) { seen_src = m.src; });
  alice.send(Message(/*forged src*/ 42, 2, 1, 0), sim::make_args(spec));
  fabric.run();
  EXPECT_EQ(seen_src, 1);
}

TEST(HostRuntime, ExplicitTransportBehavesLikeFabricCtor) {
  const KernelSpec spec = spec_of("unsigned a");
  sim::Fabric fabric;
  net::SimTransport transport(fabric, 1);
  HostRuntime alice(transport, 1);
  HostRuntime bob(fabric, 2);
  alice.register_spec(1, spec);
  bob.register_spec(1, spec);
  fabric.connect(sim::host_ref(1), sim::host_ref(2));
  int received = 0;
  bob.on_receive([&](const Message&, sim::ArgValues&) { ++received; });
  alice.send(Message(1, 2, 1, 0), sim::make_args(spec));
  fabric.run();
  EXPECT_EQ(received, 1);
  EXPECT_STREQ(alice.transport().kind(), "sim");
}

TEST(HostRuntime, StaleRoundTripsExpireAtCap) {
  const KernelSpec spec = spec_of("unsigned a");
  sim::Fabric fabric;
  HostRuntime host(fabric, 1);  // host 2 is unreachable: no replies ever
  host.register_spec(1, spec);
  for (std::size_t i = 0; i < HostRuntime::kMaxPendingRoundTrips + 3; ++i) {
    host.send(Message(1, 2, 1, 0), sim::make_args(spec));
  }
  EXPECT_EQ(host.sent, HostRuntime::kMaxPendingRoundTrips + 3);
  EXPECT_EQ(host.dropped_stale_round_trip, 3u);
}

// --- RetransmitWindow ---------------------------------------------------------

TEST(RetransmitWindow, RetransmitsUntilAcknowledged) {
  sim::Fabric fabric;
  net::SimTransport transport(fabric, 1);
  std::vector<std::pair<int, bool>> sends;  // (chunk, is_retransmission)
  RetransmitWindow::Config config;
  config.chunks = 2;
  config.window = 2;
  config.retransmit_ns = 1000.0;
  RetransmitWindow window(transport, config, [&](int chunk, int slot, bool retx) {
    EXPECT_EQ(slot, chunk % 2);
    sends.emplace_back(chunk, retx);
  });
  window.start();
  ASSERT_EQ(sends.size(), 2u);

  // Timers at 1000/2000/3000 find both chunks unacknowledged and resend.
  fabric.run(3500.0);
  EXPECT_EQ(window.retransmissions(), 6u);
  EXPECT_FALSE(window.complete());

  EXPECT_TRUE(window.acknowledge_slot(0));
  EXPECT_TRUE(window.acknowledge_slot(1));
  EXPECT_FALSE(window.acknowledge_slot(0));  // already retired
  EXPECT_FALSE(window.acknowledge_slot(9));  // off-the-wire slot, ignored
  EXPECT_TRUE(window.complete());

  // Remaining armed timers fire but find the chunks done.
  fabric.run();
  EXPECT_EQ(window.retransmissions(), 6u);
  EXPECT_EQ(sends.size(), 8u);
}

TEST(RetransmitWindow, AcknowledgeAdvancesPerSlotChain) {
  sim::Fabric fabric;
  net::SimTransport transport(fabric, 1);
  std::vector<int> launched;
  RetransmitWindow::Config config;
  config.chunks = 5;
  config.window = 2;
  config.retransmit_ns = 1e12;  // never fires in this test
  RetransmitWindow window(transport, config, [&](int chunk, int, bool) {
    launched.push_back(chunk);
  });
  window.start();
  EXPECT_EQ(window.stride(), 2);
  EXPECT_EQ(launched, (std::vector<int>{0, 1}));
  EXPECT_EQ(window.chunk_for_slot(0), 0);
  EXPECT_EQ(window.version(0), 0);
  EXPECT_EQ(window.version(2), 1);  // chunk 2 reuses slot 0, other version
  EXPECT_EQ(window.version(4), 0);

  window.acknowledge_slot(0);  // retires 0, launches 2
  EXPECT_EQ(window.chunk_for_slot(0), 2);
  window.acknowledge_slot(1);  // retires 1, launches 3
  window.acknowledge_slot(0);  // retires 2, launches 4
  window.acknowledge_slot(0);  // retires 4; nothing left for slot 0
  window.acknowledge_slot(1);  // retires 3
  EXPECT_EQ(launched, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(window.complete());
  EXPECT_EQ(window.completed(), 5);
  EXPECT_EQ(window.retransmissions(), 0u);
}

TEST(DeviceConnection, InvalidDeviceId) {
  sim::Fabric fabric;
  DeviceConnection connection(fabric, 99);
  EXPECT_FALSE(connection.valid());
  EXPECT_FALSE(connection.managed_write("x", 1));
  std::uint64_t out = 0;
  EXPECT_FALSE(connection.managed_read("x", out));
}

// --- the device runtime action table (Table II semantics) --------------------

struct ActionCase {
  ActionKind action;
  std::uint16_t target;
  std::uint16_t from_before;  // previous computing device (0 = none)
  // expectations:
  bool drop;
  bool multicast;
  std::uint16_t dst_after;
  std::uint16_t to_after;
};

class DeviceRuntimeActions : public ::testing::TestWithParam<ActionCase> {};

TEST_P(DeviceRuntimeActions, RewritesHeader) {
  const ActionCase& c = GetParam();
  sim::NetclHeader header;
  header.src = 1;
  header.dst = 2;
  header.from = c.from_before;
  header.to = 5;  // this device
  const ForwardDecision decision = apply_action(header, c.action, c.target, /*device=*/5);
  EXPECT_EQ(decision.drop, c.drop);
  EXPECT_EQ(decision.multicast, c.multicast);
  EXPECT_EQ(header.from, 5) << "from must always become the computing device";
  if (!c.drop && !c.multicast) {
    EXPECT_EQ(header.dst, c.dst_after);
    EXPECT_EQ(header.to, c.to_after);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table2, DeviceRuntimeActions,
    ::testing::Values(
        // action, target, from_before, drop, mcast, dst_after, to_after
        ActionCase{ActionKind::Drop, 0, 0, true, false, 0, 0},
        ActionCase{ActionKind::Pass, 0, 0, false, false, 2, 0},
        ActionCase{ActionKind::None, 0, 0, false, false, 2, 0},
        ActionCase{ActionKind::SendToHost, 9, 0, false, false, 9, 0},
        ActionCase{ActionKind::SendToDevice, 7, 0, false, false, 2, 7},
        ActionCase{ActionKind::Multicast, 42, 0, false, true, 0, 0},
        // reflect with no previous device: back to the source host
        ActionCase{ActionKind::Reflect, 0, 0, false, false, 1, 0},
        // reflect with a previous computing device: back to that device
        ActionCase{ActionKind::Reflect, 0, 3, false, false, 2, 3},
        // reflect_long: always back to the source host
        ActionCase{ActionKind::ReflectLong, 0, 3, false, false, 1, 0}),
    [](const ::testing::TestParamInfo<ActionCase>& info) {
      return netcl::to_string(info.param.action) + "_from" +
             std::to_string(info.param.from_before);
    });

}  // namespace
}  // namespace netcl::runtime
