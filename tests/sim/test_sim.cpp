#include <gtest/gtest.h>

#include "driver/compiler.hpp"
#include "runtime/host.hpp"
#include "sim/fabric.hpp"

namespace netcl::sim {
namespace {

using driver::CompileOptions;
using driver::CompileResult;
using driver::compile_netcl;
using driver::make_device;
using runtime::DeviceConnection;
using runtime::HostRuntime;
using runtime::Message;

TEST(PacketCodec, RoundTrip) {
  DiagnosticEngine diags;
  SourceBuffer buffer("t", "_kernel(1) void k(char op, unsigned x, uint64_t y, "
                           "uint32_t _spec(3) *v) {}");
  Program program = analyze_netcl(buffer, diags);
  ASSERT_FALSE(diags.has_errors());
  const KernelSpec spec = make_kernel_spec(*program.kernels()[0]);
  ArgValues args = make_args(spec);
  args[0][0] = 7;
  args[1][0] = 0xDEADBEEF;
  args[2][0] = 0x0123456789ABCDEFULL;
  args[3] = {1, 2, 3};
  const auto wire = encode_args(spec, args);
  EXPECT_EQ(static_cast<int>(wire.size()), spec.byte_size());
  const ArgValues decoded = decode_args(spec, wire);
  EXPECT_EQ(decoded, args);
}

TEST(PacketCodec, TruncatesToWidth) {
  DiagnosticEngine diags;
  SourceBuffer buffer("t", "_kernel(1) void k(uint16_t x) {}");
  Program program = analyze_netcl(buffer, diags);
  const KernelSpec spec = make_kernel_spec(*program.kernels()[0]);
  ArgValues args = {{0x12345678}};
  const ArgValues decoded = decode_args(spec, encode_args(spec, args));
  EXPECT_EQ(decoded[0][0], 0x5678u);
}

TEST(PacketCodec, ShortBufferZeroFills) {
  DiagnosticEngine diags;
  SourceBuffer buffer("t", "_kernel(1) void k(unsigned a, unsigned b) {}");
  Program program = analyze_netcl(buffer, diags);
  const KernelSpec spec = make_kernel_spec(*program.kernels()[0]);
  const std::vector<std::uint8_t> wire = {1, 0, 0, 0};  // only a
  const ArgValues decoded = decode_args(spec, wire);
  EXPECT_EQ(decoded[0][0], 1u);
  EXPECT_EQ(decoded[1][0], 0u);
}

// --- device execution ---------------------------------------------------------

CompileResult compile_ok(const std::string& source, CompileOptions options = {}) {
  CompileResult result = compile_netcl(source, options);
  EXPECT_TRUE(result.ok) << result.errors;
  return result;
}

TEST(Device, ExecuteSimpleKernel) {
  auto compiled = compile_ok("_kernel(1) void k(unsigned x, unsigned &y) { y = x * 2 + 1; }");
  const KernelSpec spec = compiled.specs.at(1);
  auto device = make_device(std::move(compiled), 1);
  ArgValues args = make_args(spec);
  args[0][0] = 20;
  const ComputeOutcome outcome = device->execute(1, args, {});
  EXPECT_TRUE(outcome.executed);
  EXPECT_EQ(outcome.action, ActionKind::Pass);
  EXPECT_EQ(args[1][0], 41u);
}

TEST(Device, BranchesAndActions) {
  auto compiled = compile_ok(R"(
    _kernel(1) void k(unsigned x) {
      if (x > 10) return ncl::reflect();
      if (x > 5) return ncl::send_to_host(9);
      return ncl::drop();
    }
  )");
  auto device = make_device(std::move(compiled), 1);
  ArgValues args = {{20}};
  EXPECT_EQ(device->execute(1, args, {}).action, ActionKind::Reflect);
  args = {{7}};
  ComputeOutcome outcome = device->execute(1, args, {});
  EXPECT_EQ(outcome.action, ActionKind::SendToHost);
  EXPECT_EQ(outcome.target, 9);
  args = {{1}};
  EXPECT_EQ(device->execute(1, args, {}).action, ActionKind::Drop);
}

TEST(Device, StatefulCounter) {
  auto compiled = compile_ok(R"(
    _net_ unsigned counters[16];
    _kernel(1) void k(unsigned idx, unsigned &count) {
      count = ncl::atomic_add_new(&counters[idx & 15], 1);
    }
  )");
  auto device = make_device(std::move(compiled), 1);
  for (unsigned i = 1; i <= 5; ++i) {
    ArgValues args = {{3}, {0}};
    device->execute(1, args, {});
    EXPECT_EQ(args[1][0], i);
  }
  ArgValues args = {{4}, {0}};
  device->execute(1, args, {});
  EXPECT_EQ(args[1][0], 1u);  // distinct slot
  std::uint64_t value = 0;
  EXPECT_TRUE(device->debug_read("counters", {3}, value));
  EXPECT_EQ(value, 5u);
}

TEST(Device, ConditionalAtomicSemantics) {
  auto compiled = compile_ok(R"(
    _net_ unsigned c;
    _kernel(1) void k(unsigned go, unsigned &out) {
      out = ncl::atomic_cond_add_new(&c, go, 10);
    }
  )");
  auto device = make_device(std::move(compiled), 1);
  ArgValues args = {{1}, {0}};
  device->execute(1, args, {});
  EXPECT_EQ(args[1][0], 10u);  // performed: new value
  args = {{0}, {0}};
  device->execute(1, args, {});
  EXPECT_EQ(args[1][0], 10u);  // not performed: old (unchanged) value
  args = {{1}, {0}};
  device->execute(1, args, {});
  EXPECT_EQ(args[1][0], 20u);
}

TEST(Device, LookupAndManagedEntries) {
  auto compiled = compile_ok(R"(
    _managed_ _lookup_ ncl::kv<unsigned, unsigned> cache[16];
    _kernel(1) void k(unsigned key, unsigned &v, char &hit) {
      hit = ncl::lookup(cache, key, v);
      return hit ? ncl::reflect() : ncl::pass();
    }
  )");
  auto device = make_device(std::move(compiled), 1);
  ArgValues args = {{5}, {0}, {0}};
  EXPECT_EQ(device->execute(1, args, {}).action, ActionKind::Pass);
  EXPECT_EQ(args[2][0], 0u);

  // Control-plane insert, as ncl::managed_* would do.
  EXPECT_TRUE(device->lookup_insert("cache", 5, 5, 1234));
  args = {{5}, {0}, {0}};
  EXPECT_EQ(device->execute(1, args, {}).action, ActionKind::Reflect);
  EXPECT_EQ(args[1][0], 1234u);
  EXPECT_EQ(args[2][0], 1u);

  EXPECT_TRUE(device->lookup_remove("cache", 5));
  args = {{5}, {0}, {0}};
  EXPECT_EQ(device->execute(1, args, {}).action, ActionKind::Pass);
}

TEST(Device, NonManagedLookupImmutable) {
  auto compiled = compile_ok(R"(
    _net_ _lookup_ ncl::kv<unsigned, unsigned> t[] = {{1,10}};
    _kernel(1) void k(unsigned key, unsigned &v, char &hit) { hit = ncl::lookup(t, key, v); }
  )");
  auto device = make_device(std::move(compiled), 1);
  EXPECT_FALSE(device->lookup_insert("t", 2, 2, 20));
}

TEST(Device, ManagedMemoryReadWrite) {
  auto compiled = compile_ok(R"(
    _managed_ unsigned thresh;
    _kernel(1) void k(unsigned x, char &over) { over = x > thresh ? 1 : 0; }
  )");
  auto device = make_device(std::move(compiled), 1);
  ArgValues args = {{100}, {0}};
  device->execute(1, args, {});
  EXPECT_EQ(args[1][0], 1u);  // thresh starts at 0

  EXPECT_TRUE(device->managed_write("thresh", {}, 500));
  std::uint64_t value = 0;
  EXPECT_TRUE(device->managed_read("thresh", {}, value));
  EXPECT_EQ(value, 500u);
  args = {{100}, {0}};
  device->execute(1, args, {});
  EXPECT_EQ(args[1][0], 0u);
}

TEST(Device, NetMemoryNotManagedAccessible) {
  auto compiled = compile_ok(R"(
    _net_ unsigned c;
    _kernel(1) void k(unsigned x) { ncl::atomic_add(&c, x); }
  )");
  auto device = make_device(std::move(compiled), 1);
  EXPECT_FALSE(device->managed_write("c", {}, 1));
  std::uint64_t value = 0;
  EXPECT_FALSE(device->managed_read("c", {}, value));
  EXPECT_TRUE(device->debug_read("c", {}, value));
}

TEST(Device, PartitionedArrayControlPlaneAccess) {
  auto compiled = compile_ok(R"(
    _managed_ unsigned cms[3][256];
    _kernel(1) void k(unsigned x, unsigned &a) {
      a = ncl::atomic_add_new(&cms[0][x], 1);
      ncl::atomic_add(&cms[1][x], 1);
      ncl::atomic_add(&cms[2][x], 1);
    }
  )");
  auto device = make_device(std::move(compiled), 1);
  ArgValues args = {{42}, {0}};
  device->execute(1, args, {});
  // The original 2D name resolves through the partition rename.
  std::uint64_t value = 0;
  ASSERT_TRUE(device->managed_read("cms", {1, 42}, value));
  EXPECT_EQ(value, 1u);
  EXPECT_TRUE(device->managed_write("cms", {2, 42}, 99));
  ASSERT_TRUE(device->managed_read("cms", {2, 42}, value));
  EXPECT_EQ(value, 99u);
}

TEST(Device, HashesMatchHostPrediction) {
  auto compiled = compile_ok(R"(
    _kernel(1) void k(unsigned x, unsigned &h16, unsigned &h32) {
      h16 = ncl::crc16(x);
      h32 = ncl::crc32(x);
    }
  )");
  auto device = make_device(std::move(compiled), 1);
  ArgValues args = {{0xCAFE}, {0}, {0}};
  device->execute(1, args, {});
  EXPECT_EQ(args[1][0], crc16_u64(0xCAFE, 4));
  EXPECT_EQ(args[2][0], crc32_u64(0xCAFE, 4));
}

// --- fabric -----------------------------------------------------------------

TEST(FabricTest, HostToHostThroughPlainSwitch) {
  Fabric fabric;
  fabric.add_host(1);
  fabric.add_host(2);
  fabric.add_forwarding_device(1);
  fabric.connect(host_ref(1), device_ref(1));
  fabric.connect(host_ref(2), device_ref(1));

  int received = 0;
  fabric.set_host_handler(2, [&](Fabric&, std::uint16_t, const Packet& packet) {
    ++received;
    EXPECT_EQ(packet.netcl.src, 1);
  });
  Packet packet;
  packet.has_netcl = true;
  packet.netcl.src = 1;
  packet.netcl.dst = 2;
  fabric.send_from_host(1, packet);
  fabric.run();
  EXPECT_EQ(received, 1);
  EXPECT_GT(fabric.now(), 0.0);
}

TEST(FabricTest, MultiHopRouting) {
  Fabric fabric;
  fabric.add_host(1);
  fabric.add_host(2);
  fabric.add_forwarding_device(1);
  fabric.add_forwarding_device(2);
  fabric.add_forwarding_device(3);
  fabric.connect(host_ref(1), device_ref(1));
  fabric.connect(device_ref(1), device_ref(2));
  fabric.connect(device_ref(2), device_ref(3));
  fabric.connect(device_ref(3), host_ref(2));

  int received = 0;
  fabric.set_host_handler(2, [&](Fabric&, std::uint16_t, const Packet&) { ++received; });
  Packet packet;
  packet.has_netcl = true;
  packet.netcl.src = 1;
  packet.netcl.dst = 2;
  fabric.send_from_host(1, packet);
  fabric.run();
  EXPECT_EQ(received, 1);
}

TEST(FabricTest, LossyLinkDropsSome) {
  Fabric fabric(7);
  fabric.add_host(1);
  fabric.add_host(2);
  LinkConfig lossy;
  lossy.loss_probability = 0.5;
  fabric.connect(host_ref(1), host_ref(2), lossy);
  int received = 0;
  fabric.set_host_handler(2, [&](Fabric&, std::uint16_t, const Packet&) { ++received; });
  for (int i = 0; i < 200; ++i) {
    Packet packet;
    packet.has_netcl = true;
    packet.netcl.src = 1;
    packet.netcl.dst = 2;
    fabric.send_from_host(1, packet);
  }
  fabric.run();
  EXPECT_GT(received, 50);
  EXPECT_LT(received, 150);
  EXPECT_EQ(received + static_cast<int>(fabric.packets_dropped_loss), 200);
}

TEST(FabricTest, DuplicatingLinkDeliversCopies) {
  Fabric fabric(7);
  fabric.add_host(1);
  fabric.add_host(2);
  LinkConfig flaky;
  flaky.duplicate_probability = 1.0;
  fabric.connect(host_ref(1), host_ref(2), flaky);
  int received = 0;
  fabric.set_host_handler(2, [&](Fabric&, std::uint16_t, const Packet&) { ++received; });
  for (int i = 0; i < 10; ++i) {
    Packet packet;
    packet.has_netcl = true;
    packet.netcl.src = 1;
    packet.netcl.dst = 2;
    fabric.send_from_host(1, packet);
  }
  fabric.run();
  EXPECT_EQ(received, 20);
  EXPECT_EQ(fabric.packets_duplicated, 10u);
}

TEST(FabricTest, ReorderingLinkSwapsArrivals) {
  Fabric fabric(1234);
  fabric.add_host(1);
  fabric.add_host(2);
  LinkConfig jittery;
  jittery.reorder_probability = 0.5;
  // Jitter far above the back-to-back spacing, so delayed packets are
  // overtaken by later sends.
  jittery.reorder_jitter_ns = 1e6;
  fabric.connect(host_ref(1), host_ref(2), jittery);
  std::vector<int> order;
  fabric.set_host_handler(2, [&](Fabric&, std::uint16_t, const Packet& packet) {
    order.push_back(packet.payload[0]);
  });
  for (int i = 0; i < 50; ++i) {
    Packet packet;
    packet.has_netcl = true;
    packet.netcl.src = 1;
    packet.netcl.dst = 2;
    packet.payload = {static_cast<std::uint8_t>(i)};
    packet.netcl.len = 1;
    fabric.send_from_host(1, packet);
  }
  fabric.run();
  ASSERT_EQ(order.size(), 50u);
  EXPECT_GT(fabric.packets_reordered, 0u);
  int inversions = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) ++inversions;
  }
  EXPECT_GT(inversions, 0);
}

TEST(FabricTest, BandwidthSerializesPackets) {
  // Two equal packets over a slow link: the second arrives one
  // serialization later.
  Fabric fabric;
  fabric.add_host(1);
  fabric.add_host(2);
  LinkConfig slow;
  slow.gbps = 1.0;  // 1 bit per ns
  slow.latency_ns = 0.0;
  fabric.connect(host_ref(1), host_ref(2), slow);
  std::vector<double> arrivals;
  fabric.set_host_handler(2, [&](Fabric& f, std::uint16_t, const Packet&) {
    arrivals.push_back(f.now());
  });
  for (int i = 0; i < 2; ++i) {
    Packet packet;
    packet.has_netcl = true;
    packet.netcl.src = 1;
    packet.netcl.dst = 2;
    fabric.send_from_host(1, packet);
  }
  fabric.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const double wire_ns = (14 + 20 + 8 + 12) * 8.0;  // header-only packet at 1 Gbps
  EXPECT_DOUBLE_EQ(arrivals[0], wire_ns);
  EXPECT_DOUBLE_EQ(arrivals[1], 2 * wire_ns);
}

// --- end-to-end: the paper's Figure 4/6 cache flow ----------------------------

TEST(EndToEnd, InNetworkCacheHitAndMiss) {
  auto compiled = compile_ok(R"(
#define GET_REQ 1
_net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42},{2,42},{3,42},{4,42}};
_kernel(1) _at(1) void query(char op, unsigned k, unsigned &v, char &hit) {
  if (op == GET_REQ) {
    hit = ncl::lookup(cache, k, v);
    if (hit) return ncl::reflect();
  }
}
)");
  const KernelSpec spec = compiled.specs.at(1);

  Fabric fabric;
  HostRuntime client(fabric, 1);
  HostRuntime server(fabric, 2);
  client.register_spec(1, spec);
  server.register_spec(1, spec);
  fabric.add_device(make_device(std::move(compiled), 1));
  fabric.connect(host_ref(1), device_ref(1));
  fabric.connect(host_ref(2), device_ref(1));

  int client_got = 0;
  int server_got = 0;
  std::uint64_t client_value = 0;
  client.on_receive([&](const Message&, ArgValues& args) {
    ++client_got;
    client_value = args[2][0];
  });
  server.on_receive([&](const Message&, ArgValues& args) {
    ++server_got;
    EXPECT_EQ(args[3][0], 0u);  // miss reached the server
  });

  // Hit: key 2 is cached; the switch reflects the answer.
  ArgValues args = make_args(spec);
  args[0][0] = 1;  // GET
  args[1][0] = 2;  // key
  client.send(Message(1, 2, 1, 1), args);
  fabric.run();
  EXPECT_EQ(client_got, 1);
  EXPECT_EQ(server_got, 0);
  EXPECT_EQ(client_value, 42u);

  // Miss: key 9 goes through to the KVS server.
  args = make_args(spec);
  args[0][0] = 1;
  args[1][0] = 9;
  client.send(Message(1, 2, 1, 1), args);
  fabric.run();
  EXPECT_EQ(client_got, 1);
  EXPECT_EQ(server_got, 1);
}

TEST(EndToEnd, MulticastToGroup) {
  auto compiled = compile_ok(R"(
    _kernel(1) void k(unsigned x) { return ncl::multicast(42); }
  )");
  const KernelSpec spec = compiled.specs.at(1);
  Fabric fabric;
  HostRuntime h1(fabric, 1);
  HostRuntime h2(fabric, 2);
  HostRuntime h3(fabric, 3);
  h1.register_spec(1, spec);
  h2.register_spec(1, spec);
  h3.register_spec(1, spec);
  fabric.add_device(make_device(std::move(compiled), 1));
  for (std::uint16_t h : {1, 2, 3}) fabric.connect(host_ref(h), device_ref(1));
  fabric.set_multicast_group(1, 42, {host_ref(1), host_ref(2), host_ref(3)});

  int deliveries = 0;
  for (HostRuntime* host : {&h1, &h2, &h3}) {
    host->on_receive([&](const Message&, ArgValues&) { ++deliveries; });
  }
  h1.send(Message(1, 2, 1, 1), make_args(spec));
  fabric.run();
  EXPECT_EQ(deliveries, 3);
}

TEST(EndToEnd, SendToDeviceChain) {
  // Computation 1 has kernels on devices 1 and 2: device 1 forwards to
  // device 2, device 2 reflects to the source (multi-device, §IV).
  auto compiled1 = compile_ok(R"(
    _kernel(1) _at(1) void hop(unsigned &mark) { mark = 11; return ncl::send_to_device(2); }
    _kernel(1) _at(2) void done(unsigned &mark) { mark = mark + 100; return ncl::reflect_long(); }
  )",
                              [] {
                                CompileOptions o;
                                o.device_id = 1;
                                return o;
                              }());
  auto compiled2 = compile_ok(R"(
    _kernel(1) _at(1) void hop(unsigned &mark) { mark = 11; return ncl::send_to_device(2); }
    _kernel(1) _at(2) void done(unsigned &mark) { mark = mark + 100; return ncl::reflect_long(); }
  )",
                              [] {
                                CompileOptions o;
                                o.device_id = 2;
                                return o;
                              }());
  const KernelSpec spec = compiled1.specs.at(1);

  Fabric fabric;
  HostRuntime client(fabric, 1);
  HostRuntime server(fabric, 4);
  client.register_spec(1, spec);
  server.register_spec(1, spec);
  fabric.add_device(make_device(std::move(compiled1), 1));
  fabric.add_device(make_device(std::move(compiled2), 2));
  fabric.connect(host_ref(1), device_ref(1));
  fabric.connect(device_ref(1), device_ref(2));
  fabric.connect(host_ref(4), device_ref(2));

  std::uint64_t mark = 0;
  int client_got = 0;
  client.on_receive([&](const Message&, ArgValues& args) {
    ++client_got;
    mark = args[0][0];
  });
  client.send(Message(1, 4, 1, 1), make_args(spec));
  fabric.run();
  EXPECT_EQ(client_got, 1);
  EXPECT_EQ(mark, 111u);  // both kernels ran, in order
}

}  // namespace
}  // namespace netcl::sim
