#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "support/hashes.hpp"

namespace netcl {
namespace {

// CRC-16/ARC of "123456789" is the classic check value 0xBB3D.
TEST(Hashes, Crc16CheckValue) {
  const std::array<std::uint8_t, 9> data = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16(data), 0xBB3D);
}

// CRC-32 of "123456789" is 0xCBF43926.
TEST(Hashes, Crc32CheckValue) {
  const std::array<std::uint8_t, 9> data = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Hashes, Xor16Basics) {
  const std::array<std::uint8_t, 4> data = {0x01, 0x02, 0x03, 0x04};
  // words: 0x0201 ^ 0x0403 = 0x0602
  EXPECT_EQ(xor16(data), 0x0602);
}

TEST(Hashes, Xor16OddTail) {
  const std::array<std::uint8_t, 3> data = {0x01, 0x02, 0xFF};
  EXPECT_EQ(xor16(data), static_cast<std::uint16_t>(0x0201 ^ 0xFF));
}

TEST(Hashes, EmptyInputs) {
  EXPECT_EQ(crc16({}), 0);
  EXPECT_EQ(crc32({}), 0);
  EXPECT_EQ(xor16({}), 0);
}

TEST(Hashes, WordHelpersMatchByteForm) {
  const std::uint64_t value = 0x1122334455667788ULL;
  const std::array<std::uint8_t, 8> bytes = {0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11};
  EXPECT_EQ(crc16_u64(value), crc16(bytes));
  EXPECT_EQ(crc32_u64(value), crc32(bytes));
  EXPECT_EQ(xor16_u64(value), xor16(bytes));
  EXPECT_EQ(crc32_u64(value, 4), crc32(std::span(bytes).first(4)));
}

TEST(Hashes, DifferentKeysUsuallyDiffer) {
  int collisions = 0;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    if (crc32_u64(k, 4) == crc32_u64(k + 1, 4)) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(SplitMix64, DeterministicAndSpread) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  SplitMix64 c(43);
  int equal = 0;
  SplitMix64 a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.next() == c.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, NextBelowInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(SplitMix64, NextDoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace netcl
