#include <gtest/gtest.h>

#include "support/diagnostics.hpp"
#include "support/source.hpp"

namespace netcl {
namespace {

TEST(SourceBuffer, LineAccess) {
  SourceBuffer buffer("test.ncl", "line one\nline two\nline three");
  EXPECT_EQ(buffer.line(1), "line one");
  EXPECT_EQ(buffer.line(2), "line two");
  EXPECT_EQ(buffer.line(3), "line three");
  EXPECT_EQ(buffer.line(4), "");
  EXPECT_EQ(buffer.line(0), "");
  EXPECT_EQ(buffer.line_count(), 3u);
}

TEST(SourceBuffer, EmptyBuffer) {
  SourceBuffer buffer("empty.ncl", "");
  EXPECT_EQ(buffer.line(1), "");
  EXPECT_EQ(buffer.line_count(), 1u);
}

TEST(SourceBuffer, TrailingNewline) {
  SourceBuffer buffer("t.ncl", "a\nb\n");
  EXPECT_EQ(buffer.line(1), "a");
  EXPECT_EQ(buffer.line(2), "b");
}

TEST(CountLoc, SkipsBlankAndCommentLines) {
  const char* text = R"(
// a comment
int x = 1;   // trailing comment

/* block
   comment */
int y = 2;
{
}
)";
  EXPECT_EQ(count_loc(text), 2);
}

TEST(CountLoc, BlockCommentOnOneLineWithCode) {
  EXPECT_EQ(count_loc("int /* c */ x;"), 1);
  EXPECT_EQ(count_loc("/* only comment */"), 0);
}

TEST(CountLoc, BraceOnlyLinesDoNotCount) {
  EXPECT_EQ(count_loc("{\n}\n;\n"), 0);
}

TEST(Diagnostics, CountsErrors) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.has_errors());
  diags.warning({1, 1}, "a warning");
  EXPECT_FALSE(diags.has_errors());
  diags.error({2, 3}, "an error");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1);
  EXPECT_TRUE(diags.contains_error("an error"));
  EXPECT_FALSE(diags.contains_error("missing"));
}

TEST(Diagnostics, RenderIncludesSnippet) {
  SourceBuffer buffer("t.ncl", "int x = @;");
  DiagnosticEngine diags;
  diags.error({1, 9}, "unexpected character '@'");
  const std::string rendered = diags.render_all(&buffer);
  EXPECT_NE(rendered.find("t.ncl:1:9"), std::string::npos);
  EXPECT_NE(rendered.find("int x = @;"), std::string::npos);
  EXPECT_NE(rendered.find('^'), std::string::npos);
}

TEST(Diagnostics, Clear) {
  DiagnosticEngine diags;
  diags.error({1, 1}, "e");
  diags.clear();
  EXPECT_FALSE(diags.has_errors());
  EXPECT_TRUE(diags.diagnostics().empty());
}

}  // namespace
}  // namespace netcl
