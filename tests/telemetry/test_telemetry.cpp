// In-band telemetry (ISSUE 4): trailer codec, default-off wire identity,
// sim-vs-swd stamp equivalence, clock alignment under skew, metric-name
// hygiene, the Prometheus exposition, and the netcl-swd scrape endpoint.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "apps/cache.hpp"
#include "apps/calc.hpp"
#include "apps/sources.hpp"
#include "driver/compiler.hpp"
#include "net/control.hpp"
#include "net/swd_server.hpp"
#include "net/udp_transport.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "runtime/host.hpp"
#include "sim/fabric.hpp"
#include "sim/telemetry.hpp"

namespace netcl {
namespace {

using runtime::HostRuntime;
using runtime::Message;
using sim::ArgValues;
using sim::TelemetryHop;
using sim::TelemetryRecord;

// --- trailer codec ------------------------------------------------------------

TelemetryHop sample_hop(std::uint16_t device) {
  TelemetryHop hop;
  hop.device_id = device;
  hop.generation = 7;
  hop.ingress_ns = 0x0102030405060708ULL;
  hop.egress_ns = 0x0102030405060999ULL;
  hop.queue_depth = 3;
  hop.stage_ops = 12;
  return hop;
}

TEST(TelemetryTrailer, RoundTrip) {
  TelemetryRecord record;
  record.requested = true;
  ASSERT_TRUE(stamp_hop(record, sample_hop(1)));
  ASSERT_TRUE(stamp_hop(record, sample_hop(2)));

  std::vector<std::uint8_t> bytes;
  append_trailer(bytes, record);
  EXPECT_EQ(bytes.size(), sim::trailer_bytes(2));

  TelemetryRecord decoded;
  ASSERT_TRUE(parse_trailer(bytes, decoded));
  EXPECT_TRUE(decoded.requested);
  EXPECT_EQ(decoded.hops, record.hops);
}

TEST(TelemetryTrailer, EmptyRecordRoundTrips) {
  TelemetryRecord record;
  record.requested = true;
  std::vector<std::uint8_t> bytes;
  append_trailer(bytes, record);
  EXPECT_EQ(bytes.size(), 1u);

  TelemetryRecord decoded;
  ASSERT_TRUE(parse_trailer(bytes, decoded));
  EXPECT_TRUE(decoded.hops.empty());
}

TEST(TelemetryTrailer, RejectsTruncatedAndOversized) {
  TelemetryRecord record;
  record.requested = true;
  ASSERT_TRUE(stamp_hop(record, sample_hop(1)));
  std::vector<std::uint8_t> bytes;
  append_trailer(bytes, record);

  TelemetryRecord decoded;
  // Empty input.
  EXPECT_FALSE(parse_trailer(std::span<const std::uint8_t>{}, decoded));
  // Truncated: one byte short of the declared hop.
  std::vector<std::uint8_t> cut(bytes.begin(), bytes.end() - 1);
  EXPECT_FALSE(parse_trailer(cut, decoded));
  // Oversized: trailing slack after the declared hop.
  std::vector<std::uint8_t> slack = bytes;
  slack.push_back(0xAB);
  EXPECT_FALSE(parse_trailer(slack, decoded));
  // Hop count above the cap.
  std::vector<std::uint8_t> flood(sim::trailer_bytes(sim::kMaxTelemetryHops + 1), 0);
  flood[0] = static_cast<std::uint8_t>(sim::kMaxTelemetryHops + 1);
  EXPECT_FALSE(parse_trailer(flood, decoded));
}

TEST(TelemetryTrailer, StampStopsAtMaxHops) {
  TelemetryRecord record;
  record.requested = true;
  for (std::size_t i = 0; i < sim::kMaxTelemetryHops; ++i) {
    EXPECT_TRUE(stamp_hop(record, sample_hop(static_cast<std::uint16_t>(i))));
  }
  EXPECT_FALSE(stamp_hop(record, sample_hop(99)));
  EXPECT_EQ(record.hops.size(), sim::kMaxTelemetryHops);
}

// --- default-off wire identity ------------------------------------------------

TEST(TelemetryWire, OffIsByteIdenticalToPreTelemetryLayout) {
  sim::Packet packet;
  packet.has_netcl = true;
  packet.netcl.src = 3;
  packet.netcl.dst = 9;
  packet.netcl.from = 2;
  packet.netcl.to = 7;
  packet.netcl.comp = 5;
  packet.netcl.flags = 0xA0;
  packet.payload = {1, 2, 3, 4, 0xFF};
  packet.netcl.len = static_cast<std::uint16_t>(packet.payload.size());

  // The pre-INT datagram layout, byte for byte: magic | header | payload.
  const std::vector<std::uint8_t> golden = {
      'N', 'C', 'L', 1,           // magic + version
      3,   0,                     // src (LE)
      9,   0,                     // dst
      2,   0,                     // from
      7,   0,                     // to
      5,                          // comp
      0xA0,                       // flags — telemetry bit NOT set
      5,   0,                     // len
      1,   2, 3, 4, 0xFF,         // payload
  };
  EXPECT_EQ(net::serialize_packet(packet), golden);

  // Even a stale flag bit is masked off while telemetry is unrequested, so
  // a receiver never sees the flag without a trailer.
  packet.netcl.flags = 0xA0 | sim::kFlagTelemetry;
  EXPECT_EQ(net::serialize_packet(packet), golden);
}

TEST(TelemetryWire, RequestedCarriesTrailerAndRoundTrips) {
  sim::Packet packet;
  packet.has_netcl = true;
  packet.netcl.comp = 1;
  packet.payload = {9, 9};
  packet.netcl.len = 2;
  packet.telemetry.requested = true;
  ASSERT_TRUE(stamp_hop(packet.telemetry, sample_hop(4)));

  const std::vector<std::uint8_t> bytes = net::serialize_packet(packet);
  EXPECT_EQ(bytes.size(), net::kWireHeaderBytes + 2 + sim::trailer_bytes(1));

  sim::Packet decoded;
  ASSERT_TRUE(net::deserialize_packet(bytes, decoded));
  EXPECT_TRUE(decoded.telemetry.requested);
  EXPECT_EQ(decoded.telemetry.hops, packet.telemetry.hops);

  // A datagram whose flag promises a trailer that is then truncated is
  // rejected whole — no partial stamps.
  std::vector<std::uint8_t> cut(bytes.begin(), bytes.end() - 3);
  EXPECT_FALSE(net::deserialize_packet(cut, decoded));
}

// --- telemetry-off passivity (seeded regression) ------------------------------

TEST(TelemetryPassivity, CalcResultsIdenticalWithAndWithoutTelemetry) {
  apps::CalcConfig plain;
  plain.operations = 48;
  const apps::CalcResult base = apps::run_calc(plain);
  ASSERT_TRUE(base.ok) << base.error;

  // Same seed, telemetry on: stamps ride the packets but must not change
  // what the kernels compute or when the simulator delivers.
  apps::CalcConfig instrumented = plain;
  instrumented.telemetry = true;
  const apps::CalcResult on = apps::run_calc(instrumented);
  ASSERT_TRUE(on.ok) << on.error;

  EXPECT_EQ(on.answered, base.answered);
  EXPECT_EQ(on.correct, base.correct);
  EXPECT_EQ(on.dropped_unknown, base.dropped_unknown);
  EXPECT_EQ(base.telemetry_spans, 0u);
  EXPECT_EQ(on.telemetry_spans, static_cast<std::uint64_t>(on.answered));
}

TEST(TelemetryPassivity, CacheTimingIdenticalWithAndWithoutTelemetry) {
  apps::CacheConfig plain;
  plain.total_keys = 32;
  plain.cached_keys = 16;
  plain.queries = 64;
  const apps::CacheResult base = apps::run_cache(plain);
  ASSERT_TRUE(base.ok) << base.error;

  // A second telemetry-off run is bit-for-bit deterministic.
  const apps::CacheResult repeat = apps::run_cache(plain);
  ASSERT_TRUE(repeat.ok) << repeat.error;
  EXPECT_EQ(repeat.mean_response_ns, base.mean_response_ns);
  EXPECT_EQ(repeat.hit_rate, base.hit_rate);

  apps::CacheConfig instrumented = plain;
  instrumented.telemetry = true;
  const apps::CacheResult on = apps::run_cache(instrumented);
  ASSERT_TRUE(on.ok) << on.error;

  // Telemetry-on answers are identical; timing shifts only by the INT
  // trailer's wire bytes (the link model honestly pays for the extra ~31
  // bytes per stamped packet, as real INT does), so allow well under 1%.
  EXPECT_EQ(on.hit_rate, base.hit_rate);
  EXPECT_NEAR(on.mean_response_ns, base.mean_response_ns,
              0.01 * base.mean_response_ns);
  EXPECT_GT(on.telemetry_spans, 0u);
}

// --- sim vs swd stamp equivalence ---------------------------------------------

driver::CompileResult compile_calc(std::uint16_t device_id) {
  apps::AppSource app = apps::calc_source();
  driver::CompileOptions options;
  options.device_id = device_id;
  options.defines = app.defines;
  driver::CompileResult compiled = driver::compile_netcl(app.source, options);
  EXPECT_TRUE(compiled.ok) << compiled.errors;
  return compiled;
}

TEST(TelemetryEquivalence, SimAndSwdStampTheSameShape) {
  // Same kernel, same op, two engines: the simulated switch on the fabric
  // clock and the daemon on its wall clock must stamp the same number of
  // hops, for the same device, with the same kernel work tally.
  driver::CompileResult sim_compiled = compile_calc(1);
  const KernelSpec spec = sim_compiled.specs.at(1);

  // Sim side.
  {
    sim::Fabric fabric(3);
    fabric.add_device(driver::make_device(std::move(sim_compiled), 1));
    HostRuntime host(fabric, 1);
    host.register_spec(1, spec);
    fabric.connect(sim::host_ref(1), sim::device_ref(1));
    obs::Tracer trace;
    obs::MetricsRegistry metrics("test.sim.telemetry");
    obs::SpanCollector collector(trace, metrics);
    host.enable_telemetry(&collector);
    host.on_receive([&](const Message&, ArgValues&) {});
    ArgValues args = sim::make_args(spec);
    args[0][0] = apps::kCalcAdd;
    args[1][0] = 20;
    args[2][0] = 22;
    host.send(Message(1, 0, 1, 1), args);
    fabric.run();
    ASSERT_EQ(collector.spans(), 1u);
    // One device on the path → one hop folded into the collector.
    ASSERT_EQ(metrics.counter("int_hops").value(), 1u);
  }

  // swd side.
  driver::CompileResult swd_compiled = compile_calc(1);
  net::SwdServer server(driver::make_device(std::move(swd_compiled), 1),
                        net::SwdOptions{});
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });
  {
    net::UdpTransport::Options transport_options;
    transport_options.peer_port = server.udp_port();
    net::UdpTransport transport(transport_options);
    ASSERT_TRUE(transport.valid()) << transport.error();
    HostRuntime host(transport, 1);
    host.register_spec(1, spec);
    obs::Tracer trace;
    obs::MetricsRegistry metrics("test.swd.telemetry");
    obs::SpanCollector collector(trace, metrics);
    host.enable_telemetry(&collector);
    bool done = false;
    host.on_receive([&](const Message&, ArgValues&) { done = true; });
    ArgValues args = sim::make_args(spec);
    args[0][0] = apps::kCalcAdd;
    args[1][0] = 20;
    args[2][0] = 22;
    host.send(Message(1, 0, 1, 1), args);
    ASSERT_TRUE(transport.run_until([&] { return done; }, 10e9));
    ASSERT_EQ(collector.spans(), 1u);
    ASSERT_EQ(metrics.counter("int_hops").value(), 1u);
  }
  server.stop();
  serving.join();
  EXPECT_EQ(server.telemetry_stamps.value(), 1u);
}

TEST(TelemetryEquivalence, SwdStampsAreOrderedOnTheDaemonClock) {
  driver::CompileResult compiled = compile_calc(1);
  const KernelSpec spec = compiled.specs.at(1);
  net::SwdOptions swd_options;
  swd_options.generation = 42;
  net::SwdServer server(driver::make_device(std::move(compiled), 1), swd_options);
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });

  // Speak the wire directly so the response trailer is inspectable.
  net::UdpTransport::Options transport_options;
  transport_options.peer_port = server.udp_port();
  net::UdpTransport transport(transport_options);
  ASSERT_TRUE(transport.valid()) << transport.error();
  sim::Packet response;
  bool got = false;
  transport.set_receiver([&](const sim::Packet& packet) {
    response = packet;
    got = true;
  });

  sim::Packet request;
  request.has_netcl = true;
  request.netcl.src = 1;
  request.netcl.from = 1;
  request.netcl.to = 1;
  request.netcl.comp = 1;
  ArgValues args = sim::make_args(spec);
  args[0][0] = apps::kCalcAdd;
  args[1][0] = 1;
  args[2][0] = 2;
  request.payload = sim::encode_args(spec, args);
  request.netcl.len = static_cast<std::uint16_t>(request.payload.size());
  request.telemetry.requested = true;
  transport.send(std::move(request));
  ASSERT_TRUE(transport.run_until([&] { return got; }, 10e9));

  ASSERT_TRUE(response.telemetry.requested);
  ASSERT_EQ(response.telemetry.hops.size(), 1u);
  const TelemetryHop& hop = response.telemetry.hops[0];
  EXPECT_EQ(hop.device_id, 1);
  EXPECT_GE(hop.egress_ns, hop.ingress_ns);
  EXPECT_GT(hop.stage_ops, 0u);  // the calc kernel did real work
  EXPECT_EQ(hop.generation, 42u);

  server.stop();
  serving.join();
}

// --- clock alignment ----------------------------------------------------------

TEST(ClockAlignment, MidpointRecoversOffsetWithinHalfRtt) {
  // Host clock = device clock + 5000 ns (the device booted "later").
  // A symmetric exchange: send at 10000, device reads its clock at host
  // time 10500 (device clock 5500), reply lands at 11000.
  const obs::ClockAlignment alignment = obs::align_clocks(10000.0, 11000.0, 5500.0);
  ASSERT_TRUE(alignment.valid);
  EXPECT_NEAR(alignment.offset_ns, 5000.0, (11000.0 - 10000.0) / 2.0);
  // With a perfectly symmetric exchange the estimate is exact.
  EXPECT_DOUBLE_EQ(alignment.offset_ns, 5000.0);
}

TEST(ClockAlignment, AsymmetryErrorIsBoundedByHalfRtt) {
  // Same true offset (5000), but the device read its clock immediately on
  // receive (host time 10100, device 5100) while the reply crawled back.
  const obs::ClockAlignment alignment = obs::align_clocks(10000.0, 12000.0, 5100.0);
  ASSERT_TRUE(alignment.valid);
  EXPECT_LE(std::abs(alignment.offset_ns - 5000.0), (12000.0 - 10000.0) / 2.0);
}

TEST(ClockAlignment, RejectsNegativeWindow) {
  EXPECT_FALSE(obs::align_clocks(2000.0, 1000.0, 0.0).valid);
}

TEST(ClockAlignment, CollectorClampsResidualSkewIntoTheSpanWindow) {
  obs::Tracer trace;
  trace.enable();
  obs::MetricsRegistry metrics("test.clamp.telemetry");
  obs::SpanCollector collector(trace, metrics);
  collector.set_clock_offset(3, 1000.0);
  EXPECT_DOUBLE_EQ(collector.clock_offset(3), 1000.0);
  EXPECT_DOUBLE_EQ(collector.clock_offset(99), 0.0);  // unknown → fabric clock

  obs::SpanSample sample;
  sample.host_id = 1;
  sample.computation = 1;
  sample.send_ns = 10000.0;
  sample.recv_ns = 20000.0;
  TelemetryHop hop;
  hop.device_id = 3;
  hop.ingress_ns = 50000;  // aligned: 51000 — far past the window
  hop.egress_ns = 60000;
  sample.hops.push_back(hop);
  collector.record_span(sample);

  EXPECT_EQ(metrics.counter("int_clock_clamped").value(), 1u);
  // The emitted hop event is clamped into [send, recv], keeping the merged
  // trace monotonic even under bad alignment.
  bool found = false;
  for (const obs::TraceEvent& event : trace.events()) {
    if (event.pid < obs::SpanCollector::kDevicePidBase) continue;
    found = true;
    EXPECT_GE(event.ts_us, sample.send_ns / 1e3);
    EXPECT_LE(event.ts_us + event.dur_us, sample.recv_ns / 1e3);
  }
  EXPECT_TRUE(found);
}

TEST(ClockAlignment, NegativeSkewAlignsHopsWithoutClamping) {
  // The device clock runs AHEAD of the host (it "booted earlier"): send at
  // 10000, device reads 15500 at host-midpoint 10500, reply at 11000 →
  // offset −5000. The estimator must come out negative, and the collector
  // must land negatively-shifted hops inside the span window without
  // touching the clamp path.
  const obs::ClockAlignment alignment = obs::align_clocks(10000.0, 11000.0, 15500.0);
  ASSERT_TRUE(alignment.valid);
  EXPECT_DOUBLE_EQ(alignment.offset_ns, -5000.0);

  obs::Tracer trace;
  trace.enable();
  obs::MetricsRegistry metrics("test.negskew.telemetry");
  obs::SpanCollector collector(trace, metrics);
  collector.set_clock_offset(3, alignment.offset_ns);

  obs::SpanSample sample;
  sample.host_id = 1;
  sample.computation = 1;
  sample.send_ns = 10000.0;
  sample.recv_ns = 11000.0;
  TelemetryHop hop;
  hop.device_id = 3;
  hop.ingress_ns = 15200;  // aligned: 10200, inside [send, recv]
  hop.egress_ns = 15800;   // aligned: 10800
  sample.hops.push_back(hop);
  collector.record_span(sample);

  EXPECT_EQ(metrics.counter("int_clock_clamped").value(), 0u);
  bool found = false;
  for (const obs::TraceEvent& event : trace.events()) {
    if (event.pid < obs::SpanCollector::kDevicePidBase) continue;
    found = true;
    EXPECT_DOUBLE_EQ(event.ts_us, 10200.0 / 1e3);
    EXPECT_DOUBLE_EQ(event.dur_us, (10800.0 - 10200.0) / 1e3);
  }
  EXPECT_TRUE(found);
}

// --- metric-name hygiene and retained-store merge -----------------------------

TEST(MetricHygiene, InvalidCharactersAreSanitizedAtRegistration) {
  EXPECT_TRUE(obs::valid_metric_name("round_trip_ns"));
  EXPECT_TRUE(obs::valid_metric_name("comp1.sent"));
  EXPECT_FALSE(obs::valid_metric_name("has space"));
  EXPECT_FALSE(obs::valid_metric_name("br{ace}"));
  EXPECT_FALSE(obs::valid_metric_name("quo\"te"));
  EXPECT_FALSE(obs::valid_metric_name(""));

  EXPECT_EQ(obs::sanitize_metric_name("has space"), "has_space");
  EXPECT_EQ(obs::sanitize_metric_name("br{ace}"), "br_ace_");
  EXPECT_EQ(obs::sanitize_metric_name(""), "_");

  obs::MetricsRegistry registry("test.hygiene");
  registry.counter("bad name{x}").inc(2);
  // The metric lives under the sanitized name; re-registering either
  // spelling lands on the same counter.
  EXPECT_EQ(registry.counter("bad_name_x_").value(), 2u);
  registry.counter("bad name{x}").inc();
  EXPECT_EQ(registry.counter("bad_name_x_").value(), 3u);
}

TEST(MetricHygiene, RetiredRegistriesMergeAdditively) {
  const std::string name = "test.retained.merge";
  {
    obs::MetricsRegistry first(name);
    first.counter("events").inc(3);
    first.histogram("lat_ns").record(100.0);
    first.gauge("level").set(1.0);
  }
  {
    obs::MetricsRegistry second(name);
    second.counter("events").inc(4);
    second.histogram("lat_ns").record(300.0);
    second.gauge("level").set(2.0);
  }
  const auto snapshot = obs::snapshot_all();
  const auto it = snapshot.find(name);
  ASSERT_NE(it, snapshot.end());
  // Counters and histograms sum across incarnations; gauges keep the last
  // written value.
  EXPECT_EQ(it->second.counters.at("events"), 7u);
  EXPECT_EQ(it->second.histograms.at("lat_ns").count(), 2u);
  EXPECT_DOUBLE_EQ(it->second.histograms.at("lat_ns").sum(), 400.0);
  EXPECT_DOUBLE_EQ(it->second.gauges.at("level"), 2.0);
}

// --- Prometheus exposition ----------------------------------------------------

TEST(Prometheus, MetricNamesArePrefixedAndLegal) {
  EXPECT_EQ(obs::prometheus_metric_name("round_trip_ns"), "netcl_round_trip_ns");
  EXPECT_EQ(obs::prometheus_metric_name("comp1.sent"), "netcl_comp1_sent");
  EXPECT_EQ(obs::prometheus_metric_name("dropped.no-route"), "netcl_dropped_no_route");
}

TEST(Prometheus, ExpositionIsWellFormed) {
  std::map<std::string, obs::RegistrySnapshot> snapshot;
  snapshot["swd1"].counters["packets_received"] = 5;
  snapshot["swd1"].counters["packets_sent"] = 5;
  snapshot["udp"].counters["packets_received"] = 5;
  snapshot["swd1"].gauges["device.generation"] = 2.0;
  obs::Histogram latency;
  latency.record(100.0);
  latency.record(5000.0);
  snapshot["host1"].histograms["round_trip_ns"] = latency;

  const std::string text = obs::prometheus_string(snapshot);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  // Counter family: TYPE line, _total suffix, registry label.
  EXPECT_NE(text.find("# TYPE netcl_packets_received_total counter"), std::string::npos);
  EXPECT_NE(text.find("netcl_packets_received_total{registry=\"swd1\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("netcl_packets_received_total{registry=\"udp\"} 5"),
            std::string::npos);
  // Gauge keeps its name.
  EXPECT_NE(text.find("# TYPE netcl_device_generation gauge"), std::string::npos);
  // Histogram: cumulative buckets with an +Inf bound, _sum and _count.
  EXPECT_NE(text.find("# TYPE netcl_round_trip_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("netcl_round_trip_ns_bucket{registry=\"host1\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("netcl_round_trip_ns_count{registry=\"host1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("netcl_round_trip_ns_sum{registry=\"host1\"} 5100"),
            std::string::npos);
  // The aggregate traffic line a scraper can assert without knowing
  // registry names: both packets_received counters summed.
  EXPECT_NE(text.find("\nnetcl_packets_total 10\n"), std::string::npos);
  // Build identity (ISSUE 6): the same sha every BENCH_*.json is stamped
  // with, as a constant gauge with git_sha/version labels.
  EXPECT_NE(text.find("# TYPE netcl_build_info gauge"), std::string::npos);
  EXPECT_NE(text.find("netcl_build_info{git_sha=\"" +
                      std::string(obs::netcl_git_sha()) + "\",version=\"" +
                      obs::kNetclVersion + "\"} 1"),
            std::string::npos);

  // Every non-comment line is "name[{labels}] value" with a parseable
  // value — the 0.0.4 grammar a scraper depends on.
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    char* parse_end = nullptr;
    std::strtod(line.c_str() + space + 1, &parse_end);
    EXPECT_EQ(*parse_end, '\0') << line;
    const std::string series = line.substr(0, space);
    EXPECT_EQ(series.rfind("netcl_", 0), 0u) << line;
  }
}

TEST(Prometheus, HistogramBucketsAreCumulative) {
  std::map<std::string, obs::RegistrySnapshot> snapshot;
  obs::Histogram h;
  h.record(1.0);   // bucket [1,2)
  h.record(100.0); // bucket [64,128)
  snapshot["r"].histograms["h"] = h;
  const std::string text = obs::prometheus_string(snapshot);

  // The le="128" bucket (ceiling of [64,128)) must already include the
  // earlier sample — cumulative, not per-bucket.
  EXPECT_NE(text.find("netcl_h_bucket{registry=\"r\",le=\"128\"} 2"), std::string::npos);
}

TEST(Prometheus, ScrapeDuringConcurrentWritesStaysWellFormed) {
  // A writer thread hammers a live registry while the exposition renders
  // repeatedly. Counter/gauge loads are individually atomic (relaxed), so
  // a scrape mid-write sees a torn *set* of values — benign by design —
  // but every rendered document must still honor the 0.0.4 grammar.
  obs::MetricsRegistry registry("test.scrape.race");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      registry.counter("race_events").inc();
      registry.gauge("race_level").set(static_cast<double>(i % 1000));
      registry.histogram("race_ns").record(static_cast<double>(i % 4096));
      ++i;
    }
  });

  // Don't start judging until the writer is actually running — the 50
  // scrapes can otherwise complete before the thread is first scheduled.
  while (registry.counter("race_events").value() == 0) {
    std::this_thread::yield();
  }

  for (int scrape = 0; scrape < 50; ++scrape) {
    const std::string text = obs::prometheus_string(obs::snapshot_all());
    ASSERT_FALSE(text.empty());
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      const std::string line = text.substr(start, end - start);
      start = end + 1;
      if (line.empty() || line[0] == '#') continue;
      const std::size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      char* parse_end = nullptr;
      std::strtod(line.c_str() + space + 1, &parse_end);
      ASSERT_EQ(*parse_end, '\0') << line;
    }
  }
  stop.store(true);
  writer.join();
  // The writer made visible progress while we scraped.
  EXPECT_GT(registry.counter("race_events").value(), 0u);
}

// --- the scrape endpoint ------------------------------------------------------

std::string http_get(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const char request[] = "GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request, sizeof request - 1, 0),
            static_cast<ssize_t>(sizeof request - 1));
  std::string response;
  char buffer[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buffer, sizeof buffer, 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsEndpoint, ServesPrometheusOverHttpAndControlPlane) {
  driver::CompileResult compiled = compile_calc(1);
  const KernelSpec spec = compiled.specs.at(1);
  net::SwdOptions options;
  options.metrics_port = 0;  // kernel-assigned
  net::SwdServer server(driver::make_device(std::move(compiled), 1), options);
  ASSERT_TRUE(server.valid()) << server.error();
  ASSERT_NE(server.metrics_port(), 0);
  std::thread serving([&] { server.run(); });

  // Drive one packet so packets_received is nonzero.
  {
    net::UdpTransport::Options transport_options;
    transport_options.peer_port = server.udp_port();
    net::UdpTransport transport(transport_options);
    ASSERT_TRUE(transport.valid()) << transport.error();
    HostRuntime host(transport, 1);
    host.register_spec(1, spec);
    bool done = false;
    host.on_receive([&](const Message&, ArgValues&) { done = true; });
    ArgValues args = sim::make_args(spec);
    args[0][0] = apps::kCalcAdd;
    args[1][0] = 2;
    args[2][0] = 3;
    host.send(Message(1, 0, 1, 1), args);
    ASSERT_TRUE(transport.run_until([&] { return done; }, 10e9));
  }

  // HTTP scrape.
  const std::string response = http_get(server.metrics_port());
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  EXPECT_NE(body.find("# TYPE"), std::string::npos);
  // Exact counts include retained registries from earlier tests in this
  // process, so assert presence and positivity, not a specific value.
  const std::size_t received_at =
      body.find("netcl_packets_received_total{registry=\"swd1\"} ");
  ASSERT_NE(received_at, std::string::npos);
  EXPECT_GT(std::strtod(body.c_str() + received_at +
                            std::strlen("netcl_packets_received_total{registry=\"swd1\"} "),
                        nullptr),
            0.0);
  const std::size_t aggregate_at = body.find("\nnetcl_packets_total ");
  ASSERT_NE(aggregate_at, std::string::npos);
  EXPECT_GT(std::strtod(body.c_str() + aggregate_at +
                            std::strlen("\nnetcl_packets_total "),
                        nullptr),
            0.0);
  EXPECT_NE(body.find("netcl_device_generation"), std::string::npos);

  // The same body over the control plane (kMetricsText) — for hosts that
  // already hold a control connection and for tests without HTTP.
  net::ControlClient control("127.0.0.1", server.control_port());
  std::string via_control;
  ASSERT_TRUE(control.metrics_text(via_control));
  EXPECT_NE(via_control.find("netcl_packets_received_total"), std::string::npos);

  // PONG carries the daemon clock for alignment.
  std::uint16_t device_id = 0;
  std::uint32_t generation = 0;
  std::uint64_t device_clock_ns = 0;
  ASSERT_TRUE(control.ping(device_id, generation, device_clock_ns));
  EXPECT_EQ(device_id, 1);
  EXPECT_GT(device_clock_ns, 0u);
  EXPECT_EQ(server.metrics_scrapes.value(), 1u);

  server.stop();
  serving.join();
}

}  // namespace
}  // namespace netcl
