// Multi-tenant INC-as-a-service (ISSUE 7): co-resident kernels, admission
// control, hitless swap, and tenant-scoped control-plane resolution — in
// simulation and over real UDP against an in-process netcl-swd daemon.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/sources.hpp"
#include "driver/compiler.hpp"
#include "net/control.hpp"
#include "net/swd_server.hpp"
#include "net/udp_transport.hpp"
#include "p4/admission.hpp"
#include "runtime/error.hpp"
#include "runtime/host.hpp"
#include "sim/fabric.hpp"

namespace netcl {
namespace {

using runtime::DeviceConnection;
using runtime::ErrorKind;
using runtime::HostRuntime;
using runtime::Message;
using sim::ArgValues;

// --- shared fixtures ----------------------------------------------------------

/// Compiles one of the paper apps with `comp` as its computation id.
driver::CompileResult compile_app(const apps::AppSource& app, int comp) {
  driver::CompileOptions options;
  options.defines = app.defines;
  options.defines["COMP"] = static_cast<std::uint64_t>(comp);
  driver::CompileResult compiled = driver::compile_netcl(app.source, options);
  EXPECT_TRUE(compiled.ok) << app.name << ": " << compiled.errors;
  return compiled;
}

sim::ProgramArtifact compile_artifact(const apps::AppSource& app, int comp) {
  driver::CompileResult compiled = compile_app(app, comp);
  return driver::make_artifact(std::move(compiled), app.name);
}

std::map<std::string, std::uint64_t> app_defines(const apps::AppSource& app,
                                                 std::uint64_t comp) {
  std::map<std::string, std::uint64_t> defines(app.defines.begin(), app.defines.end());
  defines["COMP"] = comp;
  return defines;
}

/// One queued request: which computation, with which argument values.
using Send = std::pair<int, ArgValues>;

/// The CALC / CACHE / AGG workloads of the co-residency scenario. Every
/// send yields exactly one arrival at host 1 except the first packet of
/// each AGG round (it opens the aggregation slot and is consumed).
std::vector<Send> calc_sends(const KernelSpec& spec, int comp) {
  struct Case {
    std::uint64_t op, a, b;
  };
  const std::vector<Case> cases = {{apps::kCalcAdd, 20, 22},
                                   {apps::kCalcSub, 100, 58},
                                   {apps::kCalcAnd, 0xF0F0, 0xFF00},
                                   {apps::kCalcOr, 0xF0F0, 0x0F0F},
                                   {apps::kCalcXor, 0xFFFF, 0x00FF}};
  std::vector<Send> sends;
  for (const Case& c : cases) {
    ArgValues args = sim::make_args(spec);
    args[0][0] = c.op;
    args[1][0] = c.a;
    args[2][0] = c.b;
    sends.emplace_back(comp, std::move(args));
  }
  return sends;
}

std::vector<Send> cache_sends(const KernelSpec& spec, int comp) {
  struct Case {
    std::uint64_t op, key;
  };
  // Hit, miss (sketch path), write-back, hit again.
  const std::vector<Case> cases = {{apps::kGetReq, 5},
                                   {apps::kGetReq, 77},
                                   {apps::kPutReq, 5},
                                   {apps::kGetReq, 5}};
  std::vector<Send> sends;
  for (const Case& c : cases) {
    ArgValues args = sim::make_args(spec);
    args[0][0] = c.op;
    args[1][0] = c.key;
    for (std::size_t w = 0; w < args[2].size(); ++w) args[2][w] = 0xC0 + w;
    sends.emplace_back(comp, std::move(args));
  }
  return sends;
}

std::vector<Send> agg_sends(const KernelSpec& spec, int comp) {
  // Two rounds of a 2-worker allreduce on different slots.
  std::vector<Send> sends;
  for (std::uint64_t round = 0; round < 2; ++round) {
    for (std::uint64_t worker = 0; worker < 2; ++worker) {
      ArgValues args = sim::make_args(spec);
      args[0][0] = 0;               // ver
      args[1][0] = round;           // bmp_idx
      args[2][0] = round;           // agg_idx
      args[3][0] = 1ULL << worker;  // mask
      args[4][0] = 3 + worker;      // exp
      for (std::size_t w = 0; w < args[5].size(); ++w) {
        args[5][w] = 10 * (round + 1) + worker + w;
      }
      sends.emplace_back(comp, std::move(args));
    }
  }
  return sends;
}

/// Seeds the CACHE tenant's managed state (one valid two-word cacheline
/// for key 5; sketch threshold high enough that misses stay quiet).
void seed_cache(DeviceConnection& control) {
  ASSERT_TRUE(control.insert("KeyIndex", 5, 2));
  ASSERT_TRUE(control.insert("WordMask", 5, 0x3));
  ASSERT_TRUE(control.managed_write("Values", 0xAA, {0, 2}));
  ASSERT_TRUE(control.managed_write("Values", 0xBB, {1, 2}));
  ASSERT_TRUE(control.managed_write("Valid", 1, {2}));
  ASSERT_TRUE(control.managed_write("thresh", 1000));
}

using Responses = std::map<int, std::vector<std::vector<std::uint8_t>>>;

/// Registers host 1, queues every send, runs the fabric to completion;
/// arrivals are grouped by computation and encoded back to payload bytes
/// so comparisons are byte-exact.
Responses drive_fabric(sim::Fabric& fabric, const std::map<int, KernelSpec>& specs,
                       const std::vector<Send>& sends) {
  HostRuntime host(fabric, 1);
  for (const auto& [comp, spec] : specs) host.register_spec(comp, spec);
  Responses responses;
  host.on_receive([&](const Message& message, ArgValues& args) {
    responses[message.comp].push_back(sim::encode_args(specs.at(message.comp), args));
  });
  for (const Send& send : sends) host.send(Message(1, 1, send.first, 1), send.second);
  fabric.run();
  return responses;
}

/// Wires one device into `fabric` with host 1 attached and the AGG
/// multicast group pointing back at it.
sim::SwitchDevice* setup_fabric(sim::Fabric& fabric,
                                std::unique_ptr<sim::SwitchDevice> device) {
  fabric.add_host(1);
  sim::SwitchDevice* dev = fabric.add_device(std::move(device));
  fabric.connect(sim::host_ref(1), sim::device_ref(dev->device_id()));
  fabric.set_multicast_group(dev->device_id(), apps::kAggMulticastGroup,
                             {sim::host_ref(1)});
  return dev;
}

// --- co-residency: byte-identical to running alone (sim) ----------------------

TEST(Tenants, CoResidentAppsMatchEachAppAlone) {
  const apps::AppSource calc = apps::calc_source();
  const apps::AppSource cache = apps::cache_source(64, 2, 64);
  const apps::AppSource agg = apps::agg_source(2, 8, 4);

  driver::CompileResult calc_compiled = compile_app(calc, 1);
  driver::CompileResult cache_compiled = compile_app(cache, 2);
  driver::CompileResult agg_compiled = compile_app(agg, 3);
  const KernelSpec calc_spec = calc_compiled.specs.at(1);
  const KernelSpec cache_spec = cache_compiled.specs.at(2);
  const KernelSpec agg_spec = agg_compiled.specs.at(3);

  // Each app alone on its own device.
  Responses alone;
  {
    sim::Fabric fabric;
    setup_fabric(fabric, driver::make_device(std::move(calc_compiled), 1));
    const Responses r = drive_fabric(fabric, {{1, calc_spec}}, calc_sends(calc_spec, 1));
    alone.insert(r.begin(), r.end());
  }
  {
    sim::Fabric fabric;
    setup_fabric(fabric, driver::make_device(std::move(cache_compiled), 1));
    DeviceConnection control(fabric, 1);
    seed_cache(control);
    const Responses r = drive_fabric(fabric, {{2, cache_spec}}, cache_sends(cache_spec, 2));
    alone.insert(r.begin(), r.end());
  }
  {
    sim::Fabric fabric;
    setup_fabric(fabric, driver::make_device(std::move(agg_compiled), 1));
    const Responses r = drive_fabric(fabric, {{3, agg_spec}}, agg_sends(agg_spec, 3));
    alone.insert(r.begin(), r.end());
  }
  ASSERT_EQ(alone.at(1).size(), 5u);
  ASSERT_EQ(alone.at(2).size(), 4u);
  ASSERT_EQ(alone.at(3).size(), 2u);

  // All three co-resident on one device, traffic interleaved round-robin.
  auto device = std::make_unique<sim::SwitchDevice>(1);
  ASSERT_FALSE(device->load_program(1, compile_artifact(calc, 1)));
  ASSERT_FALSE(device->load_program(2, compile_artifact(cache, 2)));
  ASSERT_FALSE(device->load_program(3, compile_artifact(agg, 3)));
  EXPECT_EQ(device->tenant_count(), 3u);

  sim::Fabric fabric;
  setup_fabric(fabric, std::move(device));
  DeviceConnection control(fabric, 1);
  seed_cache(control);

  std::vector<Send> interleaved;
  std::vector<std::vector<Send>> lanes = {calc_sends(calc_spec, 1),
                                          cache_sends(cache_spec, 2),
                                          agg_sends(agg_spec, 3)};
  while (!lanes[0].empty() || !lanes[1].empty() || !lanes[2].empty()) {
    for (auto& lane : lanes) {
      if (lane.empty()) continue;
      interleaved.push_back(std::move(lane.front()));
      lane.erase(lane.begin());
    }
  }
  const Responses together = drive_fabric(
      fabric, {{1, calc_spec}, {2, cache_spec}, {3, agg_spec}}, interleaved);

  // The headline property: every tenant's responses are byte-identical to
  // the responses it produced running alone.
  EXPECT_EQ(together, alone);

  // And each tenant observed exactly its own traffic.
  const sim::DeviceStats* calc_stats = fabric.device(1)->tenant_stats(1);
  ASSERT_NE(calc_stats, nullptr);
  EXPECT_EQ(calc_stats->packets_processed, 5u);
  EXPECT_EQ(calc_stats->kernels_executed, 5u);
  const sim::DeviceStats* agg_stats = fabric.device(1)->tenant_stats(3);
  ASSERT_NE(agg_stats, nullptr);
  EXPECT_EQ(agg_stats->packets_processed, 4u);
}

// --- admission control --------------------------------------------------------

TEST(Tenants, OverBudgetFourthTenantIsRejectedWithResourceReport) {
  auto device = std::make_unique<sim::SwitchDevice>(1);
  ASSERT_FALSE(device->load_program(1, compile_artifact(apps::calc_source(), 1)));
  ASSERT_FALSE(device->load_program(2, compile_artifact(apps::cache_source(64, 2, 64), 2)));
  ASSERT_FALSE(device->load_program(3, compile_artifact(apps::agg_source(2, 8, 4), 3)));

  // A second CACHE instance pushes a stage past the SALU budget.
  const runtime::Error err =
      device->load_program(4, compile_artifact(apps::cache_source(64, 2, 64), 4));
  ASSERT_TRUE(err);
  EXPECT_EQ(err.kind, ErrorKind::kRejected);
  EXPECT_NE(err.message.find("over budget"), std::string::npos) << err.message;
  // The rejection carries the per-stage resource report.
  EXPECT_NE(err.message.find("stage"), std::string::npos) << err.message;
  EXPECT_NE(err.message.find("salu="), std::string::npos) << err.message;

  // Nothing changed: the three residents keep serving.
  EXPECT_EQ(device->tenant_count(), 3u);
  EXPECT_FALSE(device->has_tenant(4));
  EXPECT_EQ(device->admission().resident_count(), 3u);
}

TEST(Tenants, MaxTenantsCapIsEnforced) {
  auto device = std::make_unique<sim::SwitchDevice>(1);
  device->set_max_tenants(1);
  ASSERT_FALSE(device->load_program(1, compile_artifact(apps::calc_source(), 1)));
  const runtime::Error err =
      device->load_program(2, compile_artifact(apps::cache_source(64, 2, 64), 2));
  ASSERT_TRUE(err);
  EXPECT_EQ(err.kind, ErrorKind::kRejected);
  EXPECT_NE(err.message.find("max-tenants"), std::string::npos) << err.message;
}

TEST(Tenants, AdmissionAggregateMatchesAllocatorAccounting) {
  // The parity check behind `ncc --stats`: a single resident's admission
  // aggregate must equal the stage allocator's per-stage rows exactly —
  // both charge the base-program overhead the same way.
  driver::CompileResult compiled = compile_app(apps::cache_source(64, 2, 64), 1);
  const std::vector<p4::StageUsage>& allocated = compiled.allocation.per_stage;
  ASSERT_FALSE(allocated.empty());

  p4::AdmissionController admission;
  ASSERT_TRUE(admission.admit(1, allocated).admitted);
  const p4::AdmissionReport report = admission.current();
  ASSERT_EQ(report.aggregate.size(), allocated.size());
  for (std::size_t s = 0; s < allocated.size(); ++s) {
    EXPECT_EQ(report.aggregate[s].sram, allocated[s].sram) << "stage " << s;
    EXPECT_EQ(report.aggregate[s].tcam, allocated[s].tcam) << "stage " << s;
    EXPECT_EQ(report.aggregate[s].salus, allocated[s].salus) << "stage " << s;
    EXPECT_EQ(report.aggregate[s].vliw, allocated[s].vliw) << "stage " << s;
    EXPECT_EQ(report.aggregate[s].hash, allocated[s].hash) << "stage " << s;
    EXPECT_EQ(report.aggregate[s].tables, allocated[s].tables) << "stage " << s;
  }

  // The same rows surface in the compile report (`ncc --stats` / JSON).
  ASSERT_EQ(compiled.report.per_stage.size(), allocated.size());
  for (std::size_t s = 0; s < allocated.size(); ++s) {
    EXPECT_EQ(compiled.report.per_stage[s].at("sram"), allocated[s].sram);
    EXPECT_EQ(compiled.report.per_stage[s].at("salu"), allocated[s].salus);
    EXPECT_EQ(compiled.report.per_stage[s].at("vliw"), allocated[s].vliw);
    EXPECT_EQ(compiled.report.per_stage[s].at("tables"), allocated[s].tables);
  }
}

// --- tenant-scoped control-plane resolution -----------------------------------

TEST(Tenants, ResolveFollowsPartitionRenamesPerTenantAndRejectsAmbiguity) {
  // Two tenants compiled from the same source: every global name collides,
  // including the partition-renamed count-min sketch rows (cms -> cms$0..).
  const apps::AppSource cache = apps::cache_source(64, 2, 64);
  sim::SwitchDevice device(1);
  ASSERT_FALSE(device.load_program(1, compile_artifact(cache, 1)));
  ASSERT_FALSE(device.load_program(2, compile_artifact(cache, 2)));

  // Unscoped writes are ambiguous between the two tenants and must fail.
  EXPECT_FALSE(device.managed_write("thresh", {}, 7));
  EXPECT_FALSE(device.managed_write("cms", {0, 5}, 7));

  // Tenant-scoped writes resolve, following the partition rename
  // (cms[0][5] lands in cms$0[5]) inside that tenant only.
  EXPECT_TRUE(device.managed_write("1:cms", {0, 5}, 7));
  EXPECT_TRUE(device.managed_write("2:cms", {0, 5}, 9));
  EXPECT_TRUE(device.managed_write("1:thresh", {}, 100));
  EXPECT_TRUE(device.managed_write("2:thresh", {}, 200));

  std::uint64_t value = 0;
  ASSERT_TRUE(device.managed_read("1:cms", {0, 5}, value));
  EXPECT_EQ(value, 7u);
  ASSERT_TRUE(device.managed_read("2:cms", {0, 5}, value));
  EXPECT_EQ(value, 9u);
  ASSERT_TRUE(device.managed_read("1:thresh", {}, value));
  EXPECT_EQ(value, 100u);
  ASSERT_TRUE(device.managed_read("2:thresh", {}, value));
  EXPECT_EQ(value, 200u);

  // A neighbouring cell in the other tenant is untouched.
  ASSERT_TRUE(device.managed_read("2:cms", {0, 6}, value));
  EXPECT_EQ(value, 0u);

  // With one tenant gone the name is unique again and unscoped access works.
  ASSERT_FALSE(device.unload_program(2));
  ASSERT_TRUE(device.managed_read("thresh", {}, value));
  EXPECT_EQ(value, 100u);
}

// --- unknown computations (counted, not silently dropped) ---------------------

TEST(Tenants, UnknownComputationIsCountedAndPassesThrough) {
  driver::CompileResult compiled = compile_app(apps::calc_source(), 1);
  const KernelSpec spec = compiled.specs.at(1);
  sim::Fabric fabric;
  setup_fabric(fabric, driver::make_device(std::move(compiled), 1));

  // comp 9 has no resident kernel; the packet must still pass through to
  // its destination host, counted as unknown-computation traffic.
  std::map<int, KernelSpec> specs = {{1, spec}, {9, spec}};
  ArgValues args = sim::make_args(spec);
  args[0][0] = apps::kCalcAdd;
  args[1][0] = 1;
  args[2][0] = 2;
  std::vector<Send> sends;
  sends.emplace_back(9, args);
  sends.emplace_back(1, args);
  const Responses responses = drive_fabric(fabric, specs, sends);

  EXPECT_EQ(fabric.packets_unknown_computation.value(), 1u);
  EXPECT_EQ(fabric.device(1)->stats.no_kernel, 1u);
  ASSERT_EQ(responses.at(9).size(), 1u);  // passed through unmodified
  EXPECT_EQ(responses.at(9)[0], sim::encode_args(spec, args));
  ASSERT_EQ(responses.at(1).size(), 1u);  // the resident kernel still ran
}

// --- hitless swap (sim) -------------------------------------------------------

TEST(Tenants, HotSwapDropsZeroPacketsForCoResidentTenants) {
  const apps::AppSource calc = apps::calc_source();
  const apps::AppSource cache = apps::cache_source(64, 2, 64);
  driver::CompileResult calc_compiled = compile_app(calc, 1);
  const KernelSpec calc_spec = calc_compiled.specs.at(1);

  auto device = std::make_unique<sim::SwitchDevice>(1);
  ASSERT_FALSE(device->load_program(1, compile_artifact(calc, 1)));
  ASSERT_FALSE(device->load_program(2, compile_artifact(cache, 2)));
  sim::Fabric fabric;
  setup_fabric(fabric, std::move(device));

  DeviceConnection control(fabric, 1);
  control.set_compiler(driver::artifact_compiler());
  ASSERT_TRUE(control.managed_write("thresh", 500));

  HostRuntime host(fabric, 1);
  host.register_spec(1, calc_spec);
  std::size_t responses = 0;
  host.on_receive([&](const Message&, ArgValues&) { ++responses; });
  auto burst = [&](int n) {
    for (int i = 0; i < n; ++i) {
      ArgValues args = sim::make_args(calc_spec);
      args[0][0] = apps::kCalcAdd;
      args[1][0] = static_cast<std::uint64_t>(i);
      args[2][0] = 1;
      host.send(Message(1, 1, 1, 1), args);
    }
    fabric.run();
  };

  burst(50);
  ASSERT_EQ(responses, 50u);

  // Swap tenant 2's program. Tenant 1 is untouched; the swap replays the
  // host journal so tenant 2's managed state survives too.
  const runtime::Error err =
      control.hot_swap_kernel_e(2, "CACHE", cache.source, app_defines(cache, 2));
  ASSERT_FALSE(err) << err.message;
  EXPECT_EQ(control.resyncs(), 1u);

  burst(50);
  EXPECT_EQ(responses, 100u);

  const sim::DeviceStats* calc_stats = fabric.device(1)->tenant_stats(1);
  ASSERT_NE(calc_stats, nullptr);
  EXPECT_EQ(calc_stats->packets_processed, 100u);
  EXPECT_EQ(calc_stats->kernels_executed, 100u);
  EXPECT_EQ(calc_stats->drops_action, 0u);
  EXPECT_EQ(fabric.packets_dropped_action.value(), 0u);

  // The journaled write was replayed into the fresh register file.
  std::uint64_t thresh = 0;
  ASSERT_TRUE(control.managed_read("thresh", thresh));
  EXPECT_EQ(thresh, 500u);

  // A swap whose program fails to compile is refused and keeps the old
  // resident in place.
  const runtime::Error bad = control.hot_swap_kernel_e(
      2, "CACHE2", "_kernel(2) _at(1) void broken(", app_defines(cache, 2));
  ASSERT_TRUE(bad);
  EXPECT_EQ(bad.kind, ErrorKind::kRejected);
  EXPECT_TRUE(fabric.device(1)->has_tenant(2));
}

// --- the same story over real UDP against an in-process daemon ----------------

TEST(Tenants, UdpRuntimeLoadSwapAndRejection) {
  const apps::AppSource calc = apps::calc_source();
  const apps::AppSource cache = apps::cache_source(64, 2, 64);
  driver::CompileResult calc_ref = compile_app(calc, 1);
  const KernelSpec calc_spec = calc_ref.specs.at(1);
  const KernelSpec cache_spec = compile_app(cache, 2).specs.at(2);

  // Reference responses: each app alone, in simulation.
  Responses alone;
  {
    sim::Fabric fabric;
    setup_fabric(fabric, driver::make_device(std::move(calc_ref), 1));
    const Responses r = drive_fabric(fabric, {{1, calc_spec}}, calc_sends(calc_spec, 1));
    alone.insert(r.begin(), r.end());
  }
  {
    driver::CompileResult cache_ref = compile_app(cache, 2);
    sim::Fabric fabric;
    setup_fabric(fabric, driver::make_device(std::move(cache_ref), 1));
    DeviceConnection seed(fabric, 1);
    seed_cache(seed);
    const Responses r = drive_fabric(fabric, {{2, cache_spec}}, cache_sends(cache_spec, 2));
    alone.insert(r.begin(), r.end());
  }

  // The daemon starts empty; kernels arrive at runtime over the control
  // plane, exactly as netcl-ctl would deliver them.
  net::SwdOptions options;
  options.compiler = driver::artifact_compiler();
  net::SwdServer server(std::make_unique<sim::SwitchDevice>(1), options);
  ASSERT_TRUE(server.valid()) << server.error();
  std::thread serving([&] { server.run(); });

  DeviceConnection control("127.0.0.1", server.control_port());
  ASSERT_TRUE(control.valid());

  std::uint16_t stages = 0;
  std::string summary;
  runtime::Error err =
      control.load_kernel_e(1, "CALC", calc.source, app_defines(calc, 1), &stages, &summary);
  ASSERT_FALSE(err) << err.message;
  EXPECT_GT(stages, 0);
  EXPECT_NE(summary.find("1 tenant"), std::string::npos) << summary;
  err = control.load_kernel_e(2, "CACHE", cache.source, app_defines(cache, 2));
  ASSERT_FALSE(err) << err.message;
  seed_cache(control);

  // A duplicate tenant id is refused with the typed error.
  err = control.load_kernel_e(1, "CALC", calc.source, app_defines(calc, 1));
  ASSERT_TRUE(err);
  EXPECT_EQ(err.kind, ErrorKind::kRejected);

  // Drive both tenants' workloads over real UDP, one packet at a time.
  net::UdpTransport::Options transport_options;
  transport_options.peer_port = server.udp_port();
  net::UdpTransport transport(transport_options);
  ASSERT_TRUE(transport.valid()) << transport.error();
  HostRuntime host(transport, 1);
  host.register_spec(1, calc_spec);
  host.register_spec(2, cache_spec);
  std::map<int, KernelSpec> specs = {{1, calc_spec}, {2, cache_spec}};
  Responses udp;
  host.on_receive([&](const Message& message, ArgValues& args) {
    udp[message.comp].push_back(sim::encode_args(specs.at(message.comp), args));
  });
  std::size_t expected = 0;
  auto run_workload = [&](const std::vector<Send>& sends) {
    for (const Send& send : sends) {
      host.send(Message(1, 1, send.first, 1), send.second);
      ++expected;
      ASSERT_TRUE(transport.run_until(
          [&] {
            std::size_t total = 0;
            for (const auto& [comp, r] : udp) total += r.size();
            return total >= expected;
          },
          10e9))
          << "timed out waiting for response " << expected;
    }
  };
  run_workload(calc_sends(calc_spec, 1));
  run_workload(cache_sends(cache_spec, 2));

  // Byte-identical to each app running alone in the simulator.
  EXPECT_EQ(udp, alone);

  // Admission rejection over the wire: one SALU-hungry tenant fits, a
  // second copy exceeds the per-stage SALU budget and is rejected with the
  // resource report carried in the typed error body.
  const std::string hog = R"(
_net_ uint32_t C0; _net_ uint32_t C1; _net_ uint32_t C2; _net_ uint32_t C3;
_net_ uint32_t C4; _net_ uint32_t C5; _net_ uint32_t C6; _net_ uint32_t C7;
_kernel(COMP) _at(1) void hog(uint32_t x, uint32_t &t0, uint32_t &t1,
                              uint32_t &t2, uint32_t &t3, uint32_t &t4,
                              uint32_t &t5, uint32_t &t6, uint32_t &t7) {
  t0 = ncl::atomic_add_new(&C0, x); t1 = ncl::atomic_add_new(&C1, x);
  t2 = ncl::atomic_add_new(&C2, x); t3 = ncl::atomic_add_new(&C3, x);
  t4 = ncl::atomic_add_new(&C4, x); t5 = ncl::atomic_add_new(&C5, x);
  t6 = ncl::atomic_add_new(&C6, x); t7 = ncl::atomic_add_new(&C7, x);
  return ncl::reflect();
}
)";
  err = control.load_kernel_e(9, "hog", hog, {{"COMP", 9}});
  ASSERT_FALSE(err) << err.message;
  err = control.load_kernel_e(10, "hog2", hog, {{"COMP", 10}});
  ASSERT_TRUE(err);
  EXPECT_EQ(err.kind, ErrorKind::kRejected);
  EXPECT_NE(err.message.find("over budget"), std::string::npos) << err.message;
  EXPECT_NE(err.message.find("salu="), std::string::npos) << err.message;

  // Compile errors surface as typed rejections too.
  err = control.load_kernel_e(11, "bad", "_kernel(11) _at(1) void broken(", {});
  ASSERT_TRUE(err);
  EXPECT_EQ(err.kind, ErrorKind::kRejected);

  // The tenant table over the wire shows the residents and their stats.
  std::vector<net::KernelInfo> kernels;
  ASSERT_FALSE(control.list_kernels_e(kernels));
  ASSERT_EQ(kernels.size(), 3u);
  EXPECT_EQ(kernels[0].tenant, 1u);
  EXPECT_EQ(kernels[0].name, "CALC");
  EXPECT_EQ(kernels[0].packets_processed, 5u);
  EXPECT_EQ(kernels[1].tenant, 2u);
  EXPECT_EQ(kernels[1].computations, std::vector<std::uint32_t>{2});
  EXPECT_EQ(kernels[2].tenant, 9u);

  // Hitless swap over the wire: tenant 2 is replaced; tenant 1 keeps
  // serving with zero drops, and tenant 2's managed seed survives the
  // journal replay.
  err = control.hot_swap_kernel_e(2, "CACHE", cache.source, app_defines(cache, 2));
  ASSERT_FALSE(err) << err.message;
  run_workload(calc_sends(calc_spec, 1));
  ASSERT_EQ(udp.at(1).size(), 10u);

  kernels.clear();
  ASSERT_FALSE(control.list_kernels_e(kernels));
  ASSERT_EQ(kernels.size(), 3u);
  EXPECT_EQ(kernels[0].packets_processed, 10u);
  EXPECT_EQ(kernels[0].drops_action, 0u);

  std::uint64_t thresh = 0;
  ASSERT_TRUE(control.managed_read("thresh", thresh));
  EXPECT_EQ(thresh, 1000u);

  // Unload over the wire.
  ASSERT_FALSE(control.unload_kernel_e(9));
  kernels.clear();
  ASSERT_FALSE(control.list_kernels_e(kernels));
  EXPECT_EQ(kernels.size(), 2u);

  server.stop();
  serving.join();
}

}  // namespace
}  // namespace netcl
